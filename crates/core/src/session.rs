//! First-class simulation sessions: one user running one app under one
//! scheme, steppable frame by frame.
//!
//! The old evaluation fused "a scheme" with "the whole run loop": each
//! scheme function owned its engine, channel, and frame loop, so exactly
//! one user could exist. A [`Session`] splits that apart — the scheme
//! contributes only a per-frame stepper, while the session owns the rig
//! (resources + channel view) and the app state. Sessions can therefore be
//! driven individually ([`SchemeKind::session`]) or interleaved round-robin
//! on shared resources by a [`crate::fleet::Fleet`].

use crate::metrics::RunSummary;
use crate::sched::UnitDirective;
use crate::schemes::{AnyStepper, Rig, SchemeKind, ServerPool, Stepper, SystemConfig};
use crate::telemetry::FrameEvent;
use qvr_net::SharedChannel;
use qvr_scene::{AppProfile, AppSession};
use qvr_sim::SharedEngine;

/// One user's running pipeline: a scheme stepper bound to a rig and an app.
#[derive(Debug)]
pub struct Session {
    scheme: SchemeKind,
    app_name: &'static str,
    rig: Rig,
    app: AppSession,
    stepper: AnyStepper,
    frames_stepped: usize,
}

impl Session {
    /// Opens a session on a dedicated rig (private engine, channel, and
    /// server) — the classic single-tenant setup.
    #[must_use]
    pub(crate) fn private(
        scheme: SchemeKind,
        config: &SystemConfig,
        profile: AppProfile,
        seed: u64,
    ) -> Self {
        let rig = Rig::new(config, seed);
        Self::with_rig(scheme, config, profile, seed, rig)
    }

    /// Opens a session that joins a fleet: per-session mobile resources on
    /// the shared engine, the shared server pool, and the given channel
    /// view (shared or per-session). `directive` is the fleet's server
    /// policy resolved for this tenant's class.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn in_fleet(
        scheme: SchemeKind,
        config: &SystemConfig,
        profile: AppProfile,
        seed: u64,
        engine: SharedEngine,
        channel: SharedChannel,
        server: ServerPool,
        session_idx: usize,
        directive: UnitDirective,
    ) -> Self {
        let rig = Rig::in_fleet(config, engine, channel, server, session_idx, directive);
        Self::with_rig(scheme, config, profile, seed, rig)
    }

    fn with_rig(
        scheme: SchemeKind,
        config: &SystemConfig,
        profile: AppProfile,
        seed: u64,
        rig: Rig,
    ) -> Self {
        let app_name = profile.name;
        let app = AppSession::start(profile.clone(), seed);
        let stepper = scheme.stepper(config, profile, seed);
        Session {
            scheme,
            app_name,
            rig,
            app,
            stepper,
            frames_stepped: 0,
        }
    }

    /// Simulates one frame: the stepper submits this frame's task graph and
    /// records its metrics. Returns the frame's telemetry event — the
    /// display-end emission point of the push observability API (fleets fan
    /// it out to their sinks; standalone callers may ignore it).
    pub fn step(&mut self) -> FrameEvent {
        let span_start_ms = if self.frames_stepped == 0 {
            self.rig.origin_ms()
        } else {
            self.rig.last_display_end()
        };
        self.stepper.step(&mut self.rig, &mut self.app);
        self.frames_stepped += 1;
        let (server_render_ms, server_encode_ms, radio_ms, unit) = self.rig.take_frame_stats();
        let record = self
            .rig
            .last_record()
            .expect("every stepper records exactly one frame per step");
        FrameEvent {
            session: self.rig.slot(),
            frame: self.frames_stepped as u64 - 1,
            span_start_ms,
            end_ms: self.rig.last_display_end(),
            mtp_ms: record.mtp_ms,
            tx_bytes: record.tx_bytes,
            quality: record.quality,
            server_render_ms,
            server_encode_ms,
            radio_ms,
            unit,
            class: self.scheme.tenant_class(),
            spans: self.rig.take_frame_spans(),
        }
    }

    /// Frames stepped so far.
    #[must_use]
    pub fn frames_stepped(&self) -> usize {
        self.frames_stepped
    }

    /// The scheme this session runs.
    #[must_use]
    pub fn scheme(&self) -> SchemeKind {
        self.scheme
    }

    /// The app this session runs.
    #[must_use]
    pub fn app(&self) -> &'static str {
        self.app_name
    }

    /// End time of this session's most recently displayed frame, ms —
    /// the session's virtual clock (what [`crate::clock::FleetClock`] keys
    /// on, and useful for fairness monitoring while a fleet is running).
    #[must_use]
    pub fn last_display_end(&self) -> f64 {
        self.rig.last_display_end()
    }

    /// Motion-to-photon latency of the most recent frame, if any (for
    /// online fleet telemetry such as churn timelines).
    #[must_use]
    pub fn last_mtp_ms(&self) -> Option<f64> {
        self.rig.last_record().map(|r| r.mtp_ms)
    }

    /// Fovea eccentricity of the most recent frame, if the scheme is
    /// foveated (the warm-start seed churn hands to joining sessions).
    #[must_use]
    pub fn last_e1_deg(&self) -> Option<f64> {
        self.rig.last_record().and_then(|r| r.e1_deg)
    }

    /// Releases this session's claim on a shared link, if it holds one
    /// (called when the session leaves a fleet mid-run, so the remaining
    /// members' shares renormalize).
    pub(crate) fn release_link(&self) {
        if self.rig.channel.member().is_some() && self.rig.channel.member_is_active() {
            self.rig.channel.leave();
        }
    }

    /// Replaces this session's link share (a reclaim-driven upgrade), if
    /// the session is a link member; no-op for local-only tenants.
    pub(crate) fn set_link_share(&self, share: qvr_net::LinkShare) {
        if self.rig.channel.member().is_some() {
            self.rig.channel.set_share(share);
        }
    }

    /// A clone of this session's channel handle (churn banks departed
    /// members' handles so later joiners reuse the slot).
    pub(crate) fn channel_handle(&self) -> SharedChannel {
        self.rig.channel.clone()
    }

    /// Pre-reserves per-frame record storage for a planned run length (see
    /// [`crate::schemes::Rig::reserve_frames`]).
    #[cfg(test)]
    pub(crate) fn frame_capacity(&self) -> (usize, usize) {
        self.rig.frame_capacity()
    }

    pub(crate) fn reserve_frames(&mut self, frames: usize) {
        self.rig.reserve_frames(frames);
    }

    /// Gates every per-session resource until absolute simulated time
    /// `t_ms` (see [`crate::schemes::Rig::gate_at`]) — called once, before
    /// the first step, for sessions that join a fleet mid-run.
    pub(crate) fn gate_at(&mut self, t_ms: f64) {
        self.rig.gate_at(t_ms);
    }

    /// A handle to the engine this session submits into.
    #[must_use]
    pub(crate) fn engine(&self) -> SharedEngine {
        self.rig.engine.clone()
    }

    /// The server pool this session renders on.
    #[must_use]
    pub(crate) fn server(&self) -> ServerPool {
        self.rig.server()
    }

    /// Finalises the session into a per-session summary (latency, FPS,
    /// transmitted bytes, energy of this user's own hardware).
    #[must_use]
    pub fn finish(self) -> RunSummary {
        let liwc_always_on = self.stepper.liwc_always_on();
        self.rig
            .finish(self.stepper.label(), self.app_name, liwc_always_on)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qvr_scene::Benchmark;

    #[test]
    fn stepped_session_equals_run() {
        let config = SystemConfig::default();
        for kind in SchemeKind::all() {
            let mut session = kind.session(&config, Benchmark::Doom3H.profile(), 9);
            for _ in 0..40 {
                session.step();
            }
            assert_eq!(session.frames_stepped(), 40);
            let stepped = session.finish();
            let run = kind.run(&config, Benchmark::Doom3H.profile(), 40, 9);
            assert_eq!(stepped, run, "{kind}: session stepping must equal run()");
        }
    }

    #[test]
    fn session_exposes_identity() {
        let config = SystemConfig::default();
        let s = SchemeKind::Qvr.session(&config, Benchmark::Grid.profile(), 1);
        assert_eq!(s.scheme(), SchemeKind::Qvr);
        assert_eq!(s.app(), "GRID");
        assert_eq!(s.frames_stepped(), 0);
        assert_eq!(s.last_display_end(), 0.0);
    }

    #[test]
    fn step_emits_a_consistent_frame_event() {
        let config = SystemConfig::default();
        let mut s = SchemeKind::Qvr.session(&config, Benchmark::Hl2H.profile(), 7);
        let mut prev_end = 0.0;
        for i in 0..10u64 {
            let ev = s.step();
            assert_eq!(ev.frame, i);
            assert_eq!(ev.session, 0, "private sessions occupy slot 0");
            assert_eq!(ev.span_start_ms, prev_end, "spans tile the timeline");
            assert!(ev.end_ms > ev.span_start_ms);
            assert_eq!(ev.end_ms, s.last_display_end());
            assert_eq!(ev.mtp_ms, s.last_mtp_ms().unwrap());
            assert!(ev.server_render_ms > 0.0, "Q-VR streams its periphery");
            assert!(ev.radio_ms > 0.0);
            assert!(ev.unit.is_some());
            // Q-VR's remote branch fills every stage span, and the stages
            // tile sensibly: render before the network finishes, network
            // before display ends, display closing the frame.
            let sp = ev.spans;
            for (name, span) in [
                ("upload", sp.upload),
                ("render", sp.render),
                ("encode", sp.encode),
                ("network", sp.network),
                ("decode", sp.decode),
                ("display", sp.display),
            ] {
                assert!(!span.is_empty(), "Q-VR frames fill the {name} span");
                assert!(span.duration_ms() > 0.0);
            }
            assert!(sp.render.start_ms <= sp.network.end_ms);
            assert!(sp.network.end_ms <= sp.display.end_ms);
            assert_eq!(
                sp.display.end_ms, ev.end_ms,
                "display span closes the frame"
            );
            prev_end = ev.end_ms;
        }
        // A local-only session touches neither the server nor the link.
        let mut local = SchemeKind::LocalOnly.session(&config, Benchmark::Doom3L.profile(), 7);
        let ev = local.step();
        assert_eq!(ev.server_render_ms, 0.0);
        assert_eq!(ev.server_encode_ms, 0.0);
        assert_eq!(ev.radio_ms, 0.0);
        assert_eq!(ev.unit, None);
        assert!(
            ev.spans.render.is_empty(),
            "no remote chain, no render span"
        );
        assert!(ev.spans.network.is_empty());
        assert!(!ev.spans.display.is_empty(), "every frame scans out");
    }

    #[test]
    fn unfinished_session_summary_is_consistent() {
        let config = SystemConfig::default();
        let mut s = SchemeKind::Ffr.session(&config, Benchmark::Wolf.profile(), 2);
        s.step();
        s.step();
        let summary = s.finish();
        assert_eq!(summary.len(), 2);
        assert!(summary.makespan_ms > 0.0);
    }
}
