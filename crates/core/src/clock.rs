//! Virtual-time scheduling for fleets: step whichever session is earliest.
//!
//! `Fleet::step_round` advances every session one frame per round, which is
//! simple and bit-stable but lets tenants with very different frame times
//! drift apart in *simulated* time — after enough rounds a slow tenant's
//! far-future resource frontiers start queueing a fast tenant that is still
//! simulating an earlier window (the DESIGN.md §7 artifact). A
//! [`FleetClock`] fixes this the way any discrete-event simulator would:
//! it keeps every runnable session in a binary-heap event queue keyed on
//! the session's virtual clock (its `last_display_end`) and always hands
//! out the globally-earliest one, so all tenants advance through the same
//! simulated time window together. This is also the substrate churn needs:
//! joins and leaves happen *at a virtual time*, which only means something
//! when the fleet has a coherent global frontier.
//!
//! Entries invalidate lazily (the standard trick for heaps without
//! decrease-key): rescheduling or removing a slot bumps its epoch, and
//! stale heap entries are skipped on pop. Ties break on the lowest slot
//! index, so stepping order — and therefore every downstream schedule and
//! RNG draw — is fully deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// How a fleet advances its sessions through simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SteppingPolicy {
    /// One frame per session per round, in session-index order — the
    /// original engine, bit-pinned by the `fig_fleet` goldens.
    #[default]
    RoundRobin,
    /// Always step the session with the earliest virtual clock
    /// (`last_display_end`), via a [`FleetClock`]. Keeps time-skewed
    /// tenants synchronized (retiring the §7 artifact) and is the required
    /// mode for churn and windowed task retirement.
    VirtualTime,
}

impl SteppingPolicy {
    /// Display label.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            SteppingPolicy::RoundRobin => "round-robin",
            SteppingPolicy::VirtualTime => "virtual-time",
        }
    }
}

impl std::fmt::Display for SteppingPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One heap entry: a slot runnable at a virtual time. Ordered as a
/// *min*-heap (earliest time first, ties to the lowest slot) by inverting
/// the comparison, so it can sit in `std`'s max-oriented [`BinaryHeap`].
#[derive(Debug, Clone, Copy)]
struct Entry {
    at_ms: f64,
    slot: usize,
    epoch: u64,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Inverted: larger = earlier time, then lower slot index.
        other
            .at_ms
            .total_cmp(&self.at_ms)
            .then_with(|| other.slot.cmp(&self.slot))
    }
}

/// A binary-heap event queue over session slots keyed on virtual time.
///
/// Each slot holds at most one *valid* entry; [`FleetClock::schedule`]
/// supersedes any previous entry for the slot and [`FleetClock::remove`]
/// withdraws it (both by epoch-bumping — stale heap entries are discarded
/// on [`FleetClock::pop`]).
#[derive(Debug, Clone, Default)]
pub struct FleetClock {
    heap: BinaryHeap<Entry>,
    /// Current epoch per slot; heap entries with an older epoch are stale.
    epochs: Vec<u64>,
    /// Whether the slot's current epoch has a live heap entry.
    scheduled: Vec<bool>,
}

impl FleetClock {
    /// An empty clock.
    #[must_use]
    pub fn new() -> Self {
        FleetClock::default()
    }

    /// Schedules (or reschedules) `slot` as runnable at virtual time
    /// `at_ms`, superseding any previous entry for the slot.
    ///
    /// # Panics
    ///
    /// Panics if `at_ms` is not finite.
    pub fn schedule(&mut self, slot: usize, at_ms: f64) {
        assert!(at_ms.is_finite(), "virtual time must be finite");
        if slot >= self.epochs.len() {
            self.epochs.resize(slot + 1, 0);
            self.scheduled.resize(slot + 1, false);
        }
        self.epochs[slot] += 1;
        self.scheduled[slot] = true;
        self.heap.push(Entry {
            at_ms,
            slot,
            epoch: self.epochs[slot],
        });
    }

    /// Withdraws `slot`'s entry, if any (a session leaving or finishing its
    /// frame budget).
    pub fn remove(&mut self, slot: usize) {
        if slot < self.epochs.len() {
            self.epochs[slot] += 1;
            self.scheduled[slot] = false;
        }
    }

    /// Whether `slot` currently has a live entry.
    #[must_use]
    pub fn contains(&self, slot: usize) -> bool {
        slot < self.scheduled.len() && self.scheduled[slot]
    }

    /// Pops the earliest runnable slot and its virtual time; `None` when
    /// the queue is empty.
    pub fn pop(&mut self) -> Option<(usize, f64)> {
        while let Some(e) = self.heap.pop() {
            if self.epochs[e.slot] == e.epoch {
                self.scheduled[e.slot] = false;
                return Some((e.slot, e.at_ms));
            }
        }
        None
    }

    /// The earliest runnable slot and its virtual time without popping it.
    #[must_use]
    pub fn peek(&mut self) -> Option<(usize, f64)> {
        while let Some(e) = self.heap.peek() {
            if self.epochs[e.slot] == e.epoch {
                return Some((e.slot, e.at_ms));
            }
            self.heap.pop();
        }
        None
    }

    /// Number of live entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.scheduled.iter().filter(|s| **s).count()
    }

    /// Whether no slot is runnable.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_with_slot_tiebreak() {
        let mut c = FleetClock::new();
        c.schedule(2, 5.0);
        c.schedule(0, 3.0);
        c.schedule(1, 3.0);
        assert_eq!(c.len(), 3);
        assert_eq!(c.pop(), Some((0, 3.0)), "ties break to the lowest slot");
        assert_eq!(c.pop(), Some((1, 3.0)));
        assert_eq!(c.pop(), Some((2, 5.0)));
        assert_eq!(c.pop(), None);
        assert!(c.is_empty());
    }

    #[test]
    fn reschedule_supersedes_the_old_entry() {
        let mut c = FleetClock::new();
        c.schedule(0, 10.0);
        c.schedule(1, 1.0);
        c.schedule(0, 0.5);
        assert_eq!(c.pop(), Some((0, 0.5)));
        assert_eq!(c.pop(), Some((1, 1.0)));
        assert_eq!(c.pop(), None, "the stale 10 ms entry must be discarded");
    }

    #[test]
    fn remove_withdraws_a_slot() {
        let mut c = FleetClock::new();
        c.schedule(0, 1.0);
        c.schedule(1, 2.0);
        assert!(c.contains(0));
        c.remove(0);
        assert!(!c.contains(0));
        assert_eq!(c.len(), 1);
        assert_eq!(c.peek(), Some((1, 2.0)));
        assert_eq!(c.pop(), Some((1, 2.0)));
        assert_eq!(c.pop(), None);
    }

    #[test]
    fn removing_an_unknown_slot_is_a_noop() {
        let mut c = FleetClock::new();
        c.remove(7);
        assert!(c.is_empty());
        c.schedule(7, 1.0);
        assert_eq!(c.pop(), Some((7, 1.0)));
    }

    #[test]
    fn peek_matches_pop() {
        let mut c = FleetClock::new();
        c.schedule(3, 4.0);
        c.schedule(1, 9.0);
        assert_eq!(c.peek(), Some((3, 4.0)));
        assert_eq!(c.pop(), Some((3, 4.0)));
        assert_eq!(c.peek(), Some((1, 9.0)));
    }

    #[test]
    fn policy_labels_are_stable() {
        assert_eq!(SteppingPolicy::RoundRobin.to_string(), "round-robin");
        assert_eq!(SteppingPolicy::VirtualTime.to_string(), "virtual-time");
        assert_eq!(SteppingPolicy::default(), SteppingPolicy::RoundRobin);
    }
}
