//! The shared pipeline rig: resources, streaming chains, and accounting.

use super::SystemConfig;
use crate::metrics::{FrameRecord, RunSummary};
use qvr_energy::BusyTimes;
use qvr_gpu::GpuTimingModel;
use qvr_net::NetworkChannel;
use qvr_scene::AppProfile;
use qvr_sim::{Engine, ResourceId, TaskId};

/// Shared pipeline state for one scheme run.
#[derive(Debug)]
pub struct Rig {
    /// The discrete-event engine.
    pub engine: Engine,
    /// CPU resource (CL, LS, software controller).
    pub cpu: ResourceId,
    /// Mobile GPU resource.
    pub gpu: ResourceId,
    /// Uplink radio.
    pub net_up: ResourceId,
    /// Downlink radio.
    pub net_down: ResourceId,
    /// Remote GPU array.
    pub rgpu: ResourceId,
    /// Server-side video encoder.
    pub senc: ResourceId,
    /// Mobile video decoder.
    pub vdec: ResourceId,
    /// UCA units.
    pub uca: ResourceId,
    /// LIWC unit.
    pub liwc: ResourceId,
    /// Seeded network channel.
    pub channel: NetworkChannel,
    /// Mobile GPU timing model.
    pub mobile: GpuTimingModel,
    config: SystemConfig,
    /// Display tasks of recent frames (for render-ahead pacing).
    display_tasks: Vec<TaskId>,
    records: Vec<FrameRecord>,
}

/// Result of one remote render→encode→transmit→decode chain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RemoteChain {
    /// The final decode task; composition depends on it.
    pub done: TaskId,
    /// Wall-clock duration from chain issue to last decode as scheduled
    /// (includes queueing behind earlier frames), ms.
    pub duration_ms: f64,
    /// Contention-free chain duration: the chunked-pipeline completion time
    /// `Σstages/k + max(stage)·(k−1)/k`, ms. This is what one frame costs in
    /// isolation — the quantity the paper's stacked latency bars report and
    /// the quantity LIWC balances against local rendering.
    pub nominal_ms: f64,
    /// Bytes that crossed the downlink.
    pub bytes: f64,
}

impl Rig {
    /// Builds a rig for a config and seed.
    #[must_use]
    pub fn new(config: &SystemConfig, seed: u64) -> Self {
        let mut engine = Engine::new();
        let cpu = engine.resource("CPU");
        let gpu = engine.resource("GPU");
        let net_up = engine.resource("NET_UP");
        let net_down = engine.resource("NET_DOWN");
        let rgpu = engine.resource("RGPU");
        let senc = engine.resource("SENC");
        let vdec = engine.resource("VDEC");
        let uca = engine.resource("UCA");
        let liwc = engine.resource("LIWC");
        Rig {
            engine,
            cpu,
            gpu,
            net_up,
            net_down,
            rgpu,
            senc,
            vdec,
            uca,
            liwc,
            channel: NetworkChannel::new(config.network, seed),
            mobile: GpuTimingModel::new(config.gpu),
            config: *config,
            display_tasks: Vec::new(),
            records: Vec::new(),
        }
    }

    /// The config this rig runs under.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Render-ahead pacing dependencies for a new frame: at most
    /// `frames_in_flight` frames may be in the pipe.
    #[must_use]
    pub fn pace_deps(&self) -> Vec<TaskId> {
        let in_flight = self.config.frames_in_flight as usize;
        if self.display_tasks.len() >= in_flight {
            vec![self.display_tasks[self.display_tasks.len() - in_flight]]
        } else {
            Vec::new()
        }
    }

    /// Time for a full-screen GPU pass over both eyes at `cycles_per_px`.
    #[must_use]
    pub fn stereo_pass_ms(&self, profile: &AppProfile, cycles_per_px: f64) -> f64 {
        let px = f64::from(profile.display.width_px()) * f64::from(profile.display.height_px());
        self.mobile.fullscreen_pass_ms(px * 2.0, cycles_per_px)
    }

    /// Submits the remote render → encode → transmit → decode chain, split
    /// into `tx_chunks` streaming chunks so the stages overlap (the paper:
    /// "remote rendering, network transmission and video codex can be
    /// streamed in parallel").
    ///
    /// * `render_ms` — total remote render time for the frame;
    /// * `bytes` — total downlink bytes (already stereo-adjusted);
    /// * `decode_px` — total pixels the mobile decoder reconstructs;
    /// * `deps` — tasks that must complete before the chain starts (pose
    ///   upload, setup).
    pub fn remote_chain(
        &mut self,
        label: &str,
        render_ms: f64,
        bytes: f64,
        decode_px: f64,
        deps: &[TaskId],
    ) -> RemoteChain {
        let k = self.config.tx_chunks.max(1);
        let kf = f64::from(k);
        let encode_ms = self.config.codec_latency.encode_ms(decode_px);
        let decode_ms = self.config.codec_latency.decode_ms(decode_px);
        let mut tx_total_ms = 0.0;
        let mut issue_time: Option<f64> = None;
        let mut last_decode: Option<TaskId> = None;
        let mut prev_tx: Option<TaskId> = None;
        for i in 0..k {
            let rr = self.engine.submit(
                &format!("{label}:rr{i}"),
                Some(self.rgpu),
                render_ms / kf,
                deps,
            );
            if issue_time.is_none() {
                issue_time = Some(self.engine.start_of(rr));
            }
            let enc = self.engine.submit(
                &format!("{label}:enc{i}"),
                Some(self.senc),
                encode_ms / kf,
                &[rr],
            );
            // Sample the channel for this chunk's transfer time. The stream
            // pays its base (propagation) latency once, on the first chunk.
            let tx_ms = if i == 0 {
                self.channel.download_ms(bytes / f64::from(k))
            } else {
                self.channel.transfer_only_ms(bytes / f64::from(k))
            };
            tx_total_ms += tx_ms;
            let tx_deps: Vec<TaskId> = match prev_tx {
                Some(p) => vec![enc, p],
                None => vec![enc],
            };
            let tx = self.engine.submit(
                &format!("{label}:tx{i}"),
                Some(self.net_down),
                tx_ms,
                &tx_deps,
            );
            prev_tx = Some(tx);
            let vd = self.engine.submit(
                &format!("{label}:vd{i}"),
                Some(self.vdec),
                decode_ms / kf,
                &[tx],
            );
            last_decode = Some(vd);
        }
        let done = last_decode.expect("k >= 1");
        let stages = [render_ms, encode_ms, tx_total_ms, decode_ms];
        let sum: f64 = stages.iter().sum();
        let max = stages.iter().fold(0.0f64, |a, &b| a.max(b));
        let nominal_ms = sum / kf + max * (kf - 1.0) / kf;
        RemoteChain {
            done,
            duration_ms: self.engine.end_of(done) - issue_time.unwrap_or(0.0),
            nominal_ms,
            bytes,
        }
    }

    /// Submits the pose/config upload for a frame; returns the task and its
    /// sampled duration in ms.
    pub fn upload(&mut self, label: &str, bytes: f64, deps: &[TaskId]) -> (TaskId, f64) {
        let t = self.channel.upload_ms(bytes);
        (self.engine.submit(label, Some(self.net_up), t, deps), t)
    }

    /// Submits the display scanout as a latency-only stage and registers it
    /// for pacing. Returns the display task.
    pub fn display(&mut self, label: &str, deps: &[TaskId]) -> TaskId {
        let t = self.engine.submit(label, None, self.config.display_ms, deps);
        self.display_tasks.push(t);
        t
    }

    /// End time of the most recent display task (0 before any frame).
    #[must_use]
    pub fn last_display_end(&self) -> f64 {
        self.display_tasks
            .last()
            .map_or(0.0, |t| self.engine.end_of(*t))
    }

    /// The most recent display task, if any (for fully serialised control
    /// loops that block on present).
    #[must_use]
    pub fn last_display_task(&self) -> Option<TaskId> {
        self.display_tasks.last().copied()
    }

    /// Records a completed frame.
    pub fn record(&mut self, record: FrameRecord) {
        self.records.push(record);
    }

    /// Motion-to-photon latency from the per-frame critical path: sensor
    /// transport + CPU stages + the slower of the local/remote branches +
    /// composition path + display scanout. Queueing behind *other* frames is
    /// deliberately excluded — real pipelines sample the latest pose at
    /// render start, so render-ahead depth does not add MTP (the paper's
    /// stacked latency bars report exactly these per-stage costs).
    #[must_use]
    pub fn path_mtp_ms(&self, cpu_ms: f64, branch_ms: f64, compose_ms: f64) -> f64 {
        self.config.tracking_ms + cpu_ms + branch_ms + compose_ms + self.config.display_ms
    }

    /// Finalises the run into a summary with energy accounting.
    #[must_use]
    pub fn finish(mut self, scheme: &str, app: &str, liwc_always_on: bool) -> RunSummary {
        let span = self.engine.makespan();
        let busy = BusyTimes {
            span_ms: span,
            gpu_ms: self.engine.busy_ms(self.gpu),
            radio_ms: self.engine.busy_ms(self.net_down) + self.engine.busy_ms(self.net_up),
            vdec_ms: self.engine.busy_ms(self.vdec),
            cpu_ms: self.engine.busy_ms(self.cpu),
            liwc_ms: if liwc_always_on { span } else { self.engine.busy_ms(self.liwc) },
            uca_ms: self.engine.busy_ms(self.uca),
        };
        let energy = self.config.power.energy(&busy, self.config.gpu.frequency_mhz, self.config.network);
        // Fill in frame intervals now that all display times are known.
        let mut prev_end = 0.0;
        for (record, t) in self.records.iter_mut().zip(&self.display_tasks) {
            let end = self.engine.end_of(*t);
            record.frame_interval_ms = end - prev_end;
            prev_end = end;
        }
        RunSummary {
            scheme: scheme.to_owned(),
            app: app.to_owned(),
            frames: self.records,
            makespan_ms: span,
            busy,
            energy,
        }
    }
}
