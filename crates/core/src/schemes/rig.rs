//! The shared pipeline rig: resources, streaming chains, and accounting.
//!
//! A [`Rig`] is the per-session view of the simulated machine. In the
//! classic single-tenant mode ([`Rig::new`]) it owns a private engine, a
//! private network channel, and an analytically-accelerated remote server —
//! exactly the original one-user evaluation. In fleet mode
//! ([`Rig::in_fleet`]) several rigs submit into one [`SharedEngine`],
//! contend for one [`ServerPool`] of real GPU units, and (optionally) draw
//! from one shared [`SharedChannel`] bandwidth budget.

use super::SystemConfig;
use crate::metrics::{FrameRecord, RunSummary};
use crate::sched::UnitDirective;
use crate::telemetry::FrameSpans;
use qvr_energy::BusyTimes;
use qvr_gpu::{FrameWorkload, GpuTimingModel};
use qvr_net::{NetworkChannel, SharedChannel};
use qvr_scene::AppProfile;
use qvr_sim::{DepList, PoolId, ResourceId, SharedEngine, TaskId};
use std::fmt::Write as _;

/// The server-side resources a fleet of sessions contends for: a pool of
/// remote GPU units and a matching pool of hardware encoders (one per GPU).
#[derive(Debug, Clone, Copy)]
pub struct ServerPool {
    rgpu: PoolId,
    senc: PoolId,
    units: usize,
}

impl ServerPool {
    /// Creates (or finds) the server pools on an engine.
    ///
    /// # Panics
    ///
    /// Panics if `units` is zero.
    #[must_use]
    pub fn on(engine: &SharedEngine, units: usize) -> Self {
        ServerPool {
            rgpu: engine.resource_pool("RGPU", units),
            senc: engine.resource_pool("SENC", units),
            units,
        }
    }

    /// The remote-GPU pool.
    #[must_use]
    pub fn rgpu(&self) -> PoolId {
        self.rgpu
    }

    /// Number of GPU (and encoder) units.
    #[must_use]
    pub fn units(&self) -> usize {
        self.units
    }

    /// Aggregate GPU-pool utilisation over the engine's makespan, `[0, 1]`.
    #[must_use]
    pub fn utilization(&self, engine: &SharedEngine) -> f64 {
        engine.pool_utilization(self.rgpu)
    }
}

/// Shared pipeline state for one scheme run.
#[derive(Debug)]
pub struct Rig {
    /// The discrete-event engine (possibly shared with other sessions).
    pub engine: SharedEngine,
    /// CPU resource (CL, LS, software controller).
    pub cpu: ResourceId,
    /// Mobile GPU resource.
    pub gpu: ResourceId,
    /// Uplink radio.
    pub net_up: ResourceId,
    /// Downlink radio.
    pub net_down: ResourceId,
    /// Server pools (remote GPUs + encoders).
    server: ServerPool,
    /// Mobile video decoder.
    pub vdec: ResourceId,
    /// UCA units.
    pub uca: ResourceId,
    /// LIWC unit.
    pub liwc: ResourceId,
    /// Seeded network channel (possibly shared with other sessions).
    pub channel: SharedChannel,
    /// Mobile GPU timing model.
    pub mobile: GpuTimingModel,
    config: SystemConfig,
    /// Fleet mode: remote renders cost per-GPU time on a pool unit, and
    /// recorded chain latencies include queueing behind other tenants.
    contended: bool,
    /// How this session's remote chains pick a server unit — resolved by
    /// the fleet's [`crate::sched::ServerPolicy`] from the session's
    /// tenant class (whole-pool earliest-start outside a policy fleet).
    directive: UnitDirective,
    /// The fleet slot this rig occupies (0 for private rigs) — stamped on
    /// every telemetry [`crate::telemetry::FrameEvent`] the session emits.
    slot: usize,
    /// Absolute simulated time this session's life starts (0 unless gated
    /// by [`Rig::gate_at`]): spans, FPS, and frame intervals measure from
    /// here, so a mid-run joiner isn't billed for time before it existed.
    origin_ms: f64,
    /// Server GPU time submitted since the last frame-stat take, ms (the
    /// per-stage busy attribution telemetry streams).
    pending_render_ms: f64,
    /// Server encoder time submitted since the last take, ms.
    pending_encode_ms: f64,
    /// Link activity (uplink + downlink) submitted since the last take, ms.
    pending_radio_ms: f64,
    /// Server unit the latest remote chain landed on, if any this frame.
    pending_unit: Option<usize>,
    /// Per-stage span envelopes accumulated since the last frame-span take
    /// — task times are final at submission, so each stage's start/end is
    /// widened eagerly as chains submit (no TaskId kept alive).
    pending_spans: FrameSpans,
    /// Per-resource busy time already accumulated when this rig was built
    /// — non-zero when a churn fleet reuses a departed session's resource
    /// slot; subtracted at finish so energy stays per-tenant.
    busy_baseline: BusyTimes,
    /// Display tasks of the last `frames_in_flight` frames (for
    /// render-ahead pacing) — bounded, so retiring engine history never
    /// leaves a stale pacing reference behind.
    recent_displays: std::collections::VecDeque<TaskId>,
    /// End time of every display so far (frame intervals are derived from
    /// these at finish; times are final at submission, so recording them
    /// eagerly is exact and keeps no TaskId alive).
    display_ends: Vec<f64>,
    records: Vec<FrameRecord>,
    /// Reusable scratch for remote-chain submission (see [`ChainScratch`]).
    scratch: ChainScratch,
}

/// Reusable per-rig scratch threaded through [`Rig::remote_chain`]: chunk
/// labels compose into one buffer instead of allocating a `String` per
/// submitted task, so a steady-state frame costs no label allocations (the
/// engine interns the composed text).
#[derive(Debug, Clone, Default)]
struct ChainScratch {
    label: String,
}

/// Result of one remote render→encode→transmit→decode chain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RemoteChain {
    /// The final decode task; composition depends on it.
    pub done: TaskId,
    /// Wall-clock latency from the chain becoming ready (its dependencies
    /// done) to the last decode landing, ms. Includes queueing behind other
    /// frames and other sessions — the number a tenant actually experiences.
    pub duration_ms: f64,
    /// Contention-free chain duration: the chunked-pipeline completion time
    /// `Σstages/k + max(stage)·(k−1)/k`, ms. This is what one frame costs in
    /// isolation — the quantity the paper's stacked latency bars report and
    /// the quantity LIWC balances against local rendering.
    pub nominal_ms: f64,
    /// Bytes that crossed the downlink.
    pub bytes: f64,
}

impl Rig {
    /// Builds a private single-tenant rig for a config and seed (the
    /// original evaluation setup: one user, one server, one channel).
    #[must_use]
    pub fn new(config: &SystemConfig, seed: u64) -> Self {
        let engine = SharedEngine::new();
        let channel = SharedChannel::new(NetworkChannel::new(config.network, seed));
        let server = ServerPool::on(&engine, 1);
        let directive = UnitDirective::whole_pool(1);
        Self::build(config, engine, channel, server, None, false, directive)
    }

    /// Builds a rig that joins a fleet: per-session mobile-side resources
    /// (tagged with the session index), shared server pools, and a shared
    /// (or per-session) channel on a shared engine. `directive` is the
    /// fleet policy's placement rule for this tenant's class.
    #[must_use]
    pub(crate) fn in_fleet(
        config: &SystemConfig,
        engine: SharedEngine,
        channel: SharedChannel,
        server: ServerPool,
        session_idx: usize,
        directive: UnitDirective,
    ) -> Self {
        Self::build(
            config,
            engine,
            channel,
            server,
            Some(session_idx),
            true,
            directive,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        config: &SystemConfig,
        engine: SharedEngine,
        channel: SharedChannel,
        server: ServerPool,
        session_idx: Option<usize>,
        contended: bool,
        directive: UnitDirective,
    ) -> Self {
        let name = |base: &str| match session_idx {
            Some(i) => format!("{base}#{i}"),
            None => base.to_owned(),
        };
        let cpu = engine.resource(&name("CPU"));
        let gpu = engine.resource(&name("GPU"));
        let net_up = engine.resource(&name("NET_UP"));
        let net_down = engine.resource(&name("NET_DOWN"));
        let vdec = engine.resource(&name("VDEC"));
        let uca = engine.resource(&name("UCA"));
        let liwc = engine.resource(&name("LIWC"));
        let busy_baseline = BusyTimes {
            span_ms: 0.0,
            gpu_ms: engine.busy_ms(gpu),
            radio_ms: engine.busy_ms(net_down) + engine.busy_ms(net_up),
            vdec_ms: engine.busy_ms(vdec),
            cpu_ms: engine.busy_ms(cpu),
            liwc_ms: engine.busy_ms(liwc),
            uca_ms: engine.busy_ms(uca),
        };
        Rig {
            engine,
            cpu,
            gpu,
            net_up,
            net_down,
            server,
            vdec,
            uca,
            liwc,
            channel,
            mobile: GpuTimingModel::new(config.gpu),
            config: *config,
            contended,
            directive,
            slot: session_idx.unwrap_or(0),
            origin_ms: 0.0,
            pending_render_ms: 0.0,
            pending_encode_ms: 0.0,
            pending_radio_ms: 0.0,
            pending_unit: None,
            pending_spans: FrameSpans::default(),
            busy_baseline,
            recent_displays: std::collections::VecDeque::with_capacity(
                config.frames_in_flight as usize + 1,
            ),
            display_ends: Vec::new(),
            records: Vec::new(),
            scratch: ChainScratch::default(),
        }
    }

    #[cfg(test)]
    pub(crate) fn frame_capacity(&self) -> (usize, usize) {
        (self.records.capacity(), self.display_ends.capacity())
    }

    /// Pre-reserves the per-frame record storage for a run of (at least)
    /// `frames` frames, so long-horizon runs don't reallocate
    /// `display_ends`/`records` mid-flight. Growing past the reservation
    /// still works — this is a capacity hint, not a bound.
    pub fn reserve_frames(&mut self, frames: usize) {
        let extra = frames.saturating_sub(self.records.len());
        self.records.reserve(extra);
        let extra = frames.saturating_sub(self.display_ends.len());
        self.display_ends.reserve(extra);
    }

    /// The config this rig runs under.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Holds every per-session resource until absolute time `t_ms`: a
    /// session joining a running fleet starts its pipeline at its *join*
    /// time instead of simulated time zero. Zero-duration hold tasks pin
    /// each private resource's frontier; shared resources (server pool,
    /// link) already sit at the fleet's global frontier.
    pub(crate) fn gate_at(&mut self, t_ms: f64) {
        self.origin_ms = t_ms.max(0.0);
        for rid in [
            self.cpu,
            self.gpu,
            self.net_up,
            self.net_down,
            self.vdec,
            self.uca,
            self.liwc,
        ] {
            self.engine
                .submit_at("join:hold", Some(rid), t_ms, 0.0, &[]);
        }
    }

    /// Whether this rig contends with other sessions (fleet mode).
    #[must_use]
    pub fn contended(&self) -> bool {
        self.contended
    }

    /// The server pools this rig renders on.
    #[must_use]
    pub fn server(&self) -> ServerPool {
        self.server
    }

    /// Render-ahead pacing dependencies for a new frame: at most
    /// `frames_in_flight` frames may be in the pipe. Returned inline (a
    /// [`DepList`] derefs to `&[TaskId]`), so per-frame pacing allocates
    /// nothing.
    #[must_use]
    pub fn pace_deps(&self) -> DepList {
        let mut deps = DepList::new();
        let in_flight = self.config.frames_in_flight as usize;
        if self.display_ends.len() >= in_flight {
            // The deque holds exactly the last `in_flight` display tasks,
            // so its front is the display of frame `n - in_flight`.
            deps.push(*self.recent_displays.front().expect("deque primed"));
        }
        deps
    }

    /// Time for a full-screen GPU pass over both eyes at `cycles_per_px`.
    #[must_use]
    pub fn stereo_pass_ms(&self, profile: &AppProfile, cycles_per_px: f64) -> f64 {
        let px = f64::from(profile.display.width_px()) * f64::from(profile.display.height_px());
        self.mobile.fullscreen_pass_ms(px * 2.0, cycles_per_px)
    }

    /// Remote render time for a per-eye workload under this rig's server
    /// scheduling: the analytic all-chiplets time when the session owns the
    /// server, the single-GPU time when it shares a pool of per-frame units.
    #[must_use]
    pub fn remote_render_ms(&self, per_eye: &FrameWorkload) -> f64 {
        if self.contended {
            self.config.remote.per_gpu_stereo_render_ms(per_eye)
        } else {
            self.config.remote.stereo_render_ms(per_eye)
        }
    }

    /// The latency a frame's remote chain contributes to this session's
    /// motion-to-photon: contention-free nominal cost in single-tenant mode
    /// (the paper's per-stage bars), experienced queueing-inclusive latency
    /// in fleet mode (where waiting behind other tenants is the point).
    #[must_use]
    pub fn chain_latency_ms(&self, chain: &RemoteChain) -> f64 {
        if self.contended {
            chain.duration_ms
        } else {
            chain.nominal_ms
        }
    }

    /// Resolves this session's placement directive to a concrete server
    /// unit for a chain becoming ready at `ready` ms.
    fn select_chain_unit(&self, ready: f64) -> usize {
        let pool = self.server.rgpu;
        match &self.directive {
            UnitDirective::EarliestStart { lo, hi } => {
                self.engine.least_loaded_unit_in(pool, ready, *lo..*hi)
            }
            UnitDirective::PackLatest { aging_ms, units } => {
                let packed = self.engine.most_loaded_unit_in(pool, ready, 0..*units);
                let free = self.engine.free_at(self.engine.pool_unit(pool, packed));
                if free > ready + aging_ms {
                    // Aging bound hit: take the work-conserving choice so
                    // deprioritised work never waits more than `aging_ms`
                    // beyond what least-loaded placement would give it.
                    self.engine.least_loaded_unit_in(pool, ready, 0..*units)
                } else {
                    packed
                }
            }
            UnitDirective::ByLoad {
                reserved,
                heavy_ms,
                units,
                slot,
                tracker,
            } => {
                // Measured placement: re-classified at every submission
                // against the live EWMA (unmeasured tenants ride light).
                let heavy = tracker.ewma(*slot).is_some_and(|l| l > *heavy_ms);
                let range = if heavy {
                    *reserved..*units
                } else {
                    0..*reserved
                };
                self.engine.least_loaded_unit_in(pool, ready, range)
            }
        }
    }

    /// Submits the remote render → encode → transmit → decode chain, split
    /// into `tx_chunks` streaming chunks so the stages overlap (the paper:
    /// "remote rendering, network transmission and video codex can be
    /// streamed in parallel").
    ///
    /// The whole chain is pinned to one server unit — chosen by the
    /// session's placement directive (least-loaded by default; a fleet's
    /// [`crate::sched::ServerPolicy`] may confine or deprioritise the
    /// choice by tenant class) together with its encoder — so a frame
    /// never straddles GPUs while chunks still pipeline against the network
    /// and the decoder. With a 1-unit pool this reduces exactly to the
    /// classic single-resource schedule.
    ///
    /// * `render_ms` — total remote render time for the frame;
    /// * `bytes` — total downlink bytes (already stereo-adjusted);
    /// * `decode_px` — total pixels the mobile decoder reconstructs;
    /// * `deps` — tasks that must complete before the chain starts (pose
    ///   upload, setup).
    pub fn remote_chain(
        &mut self,
        label: &str,
        render_ms: f64,
        bytes: f64,
        decode_px: f64,
        deps: &[TaskId],
    ) -> RemoteChain {
        let k = self.config.tx_chunks.max(1);
        let kf = f64::from(k);
        let encode_ms = self.config.codec_latency.encode_ms(decode_px);
        let decode_ms = self.config.codec_latency.decode_ms(decode_px);
        let ready = self.engine.deps_ready_ms(deps);
        let unit = self.select_chain_unit(ready);
        let rgpu = self.engine.pool_unit(self.server.rgpu, unit);
        let senc = self.engine.pool_unit(self.server.senc, unit);
        let mut tx_total_ms = 0.0;
        let mut last_decode: Option<TaskId> = None;
        let mut prev_tx: Option<TaskId> = None;
        // Chunk labels compose into the rig's scratch buffer (taken out of
        // `self` so submissions can borrow the engine); the engine interns
        // the text, so steady-state chains allocate no label storage.
        let mut lbl = std::mem::take(&mut self.scratch.label);
        for i in 0..k {
            lbl.clear();
            let _ = write!(lbl, "{label}:rr{i}");
            let rr = self.engine.submit(&lbl, Some(rgpu), render_ms / kf, deps);
            self.pending_spans
                .render
                .widen(self.engine.start_of(rr), self.engine.end_of(rr));
            lbl.clear();
            let _ = write!(lbl, "{label}:enc{i}");
            let enc = self.engine.submit(&lbl, Some(senc), encode_ms / kf, &[rr]);
            self.pending_spans
                .encode
                .widen(self.engine.start_of(enc), self.engine.end_of(enc));
            // Sample the channel for this chunk's transfer time. The stream
            // pays its base (propagation) latency once, on the first chunk.
            let tx_ms = if i == 0 {
                self.channel.download_ms(bytes / f64::from(k))
            } else {
                self.channel.transfer_only_ms(bytes / f64::from(k))
            };
            tx_total_ms += tx_ms;
            lbl.clear();
            let _ = write!(lbl, "{label}:tx{i}");
            let tx = match prev_tx {
                Some(p) => self
                    .engine
                    .submit(&lbl, Some(self.net_down), tx_ms, &[enc, p]),
                None => self.engine.submit(&lbl, Some(self.net_down), tx_ms, &[enc]),
            };
            self.pending_spans
                .network
                .widen(self.engine.start_of(tx), self.engine.end_of(tx));
            prev_tx = Some(tx);
            lbl.clear();
            let _ = write!(lbl, "{label}:vd{i}");
            let vd = self
                .engine
                .submit(&lbl, Some(self.vdec), decode_ms / kf, &[tx]);
            self.pending_spans
                .decode
                .widen(self.engine.start_of(vd), self.engine.end_of(vd));
            last_decode = Some(vd);
        }
        self.scratch.label = lbl;
        let done = last_decode.expect("k >= 1");
        // Per-stage busy attribution for the telemetry stream: everything
        // this chain put on the server pool and the link, and where.
        self.pending_render_ms += render_ms;
        self.pending_encode_ms += encode_ms;
        self.pending_radio_ms += tx_total_ms;
        self.pending_unit = Some(unit);
        let stages = [render_ms, encode_ms, tx_total_ms, decode_ms];
        let sum: f64 = stages.iter().sum();
        let max = stages.iter().fold(0.0f64, |a, &b| a.max(b));
        let nominal_ms = sum / kf + max * (kf - 1.0) / kf;
        RemoteChain {
            done,
            duration_ms: self.engine.end_of(done) - ready,
            nominal_ms,
            bytes,
        }
    }

    /// Submits the pose/config upload for a frame; returns the task and its
    /// sampled duration in ms.
    pub fn upload(&mut self, label: &str, bytes: f64, deps: &[TaskId]) -> (TaskId, f64) {
        let t = self.channel.upload_ms(bytes);
        self.pending_radio_ms += t;
        let task = self.engine.submit(label, Some(self.net_up), t, deps);
        self.pending_spans
            .upload
            .widen(self.engine.start_of(task), self.engine.end_of(task));
        (task, t)
    }

    /// The fleet slot this rig occupies (0 for private rigs).
    #[must_use]
    pub(crate) fn slot(&self) -> usize {
        self.slot
    }

    /// The session's origin in absolute simulated time (its join gate;
    /// 0 unless gated).
    #[must_use]
    pub(crate) fn origin_ms(&self) -> f64 {
        self.origin_ms
    }

    /// Takes (and resets) the frame's accumulated busy attribution:
    /// `(server render ms, server encode ms, radio ms, server unit)`.
    /// Called once per frame by [`crate::session::Session::step`] when it
    /// assembles the frame's telemetry event.
    pub(crate) fn take_frame_stats(&mut self) -> (f64, f64, f64, Option<usize>) {
        let stats = (
            self.pending_render_ms,
            self.pending_encode_ms,
            self.pending_radio_ms,
            self.pending_unit,
        );
        self.pending_render_ms = 0.0;
        self.pending_encode_ms = 0.0;
        self.pending_radio_ms = 0.0;
        self.pending_unit = None;
        stats
    }

    /// Takes (and resets) the frame's accumulated per-stage span envelopes
    /// — the trace attribution the observability sinks consume. Called once
    /// per frame alongside [`Rig::take_frame_stats`].
    pub(crate) fn take_frame_spans(&mut self) -> FrameSpans {
        std::mem::take(&mut self.pending_spans)
    }

    /// Submits the display scanout as a latency-only stage and registers it
    /// for pacing. Returns the display task.
    pub fn display(&mut self, label: &str, deps: &[TaskId]) -> TaskId {
        let t = self
            .engine
            .submit(label, None, self.config.display_ms, deps);
        self.pending_spans
            .display
            .widen(self.engine.start_of(t), self.engine.end_of(t));
        self.recent_displays.push_back(t);
        if self.recent_displays.len() > self.config.frames_in_flight as usize {
            self.recent_displays.pop_front();
        }
        self.display_ends.push(self.engine.end_of(t));
        t
    }

    /// End time of the most recent display task (0 before any frame) —
    /// the session's virtual clock.
    #[must_use]
    pub fn last_display_end(&self) -> f64 {
        self.display_ends.last().copied().unwrap_or(0.0)
    }

    /// The most recent display task, if any (for fully serialised control
    /// loops that block on present).
    #[must_use]
    pub fn last_display_task(&self) -> Option<TaskId> {
        self.recent_displays.back().copied()
    }

    /// The most recently recorded frame, if any.
    #[must_use]
    pub(crate) fn last_record(&self) -> Option<&FrameRecord> {
        self.records.last()
    }

    /// Records a completed frame.
    pub fn record(&mut self, record: FrameRecord) {
        self.records.push(record);
    }

    /// Frames recorded so far.
    #[must_use]
    pub fn frames_recorded(&self) -> usize {
        self.records.len()
    }

    /// Motion-to-photon latency from the per-frame critical path: sensor
    /// transport + CPU stages + the slower of the local/remote branches +
    /// composition path + display scanout. In single-tenant mode the branch
    /// uses contention-free nominal costs, so queueing behind the session's
    /// own render-ahead frames is excluded — real pipelines sample the
    /// latest pose at render start (the paper's stacked latency bars report
    /// exactly these per-stage costs). In fleet mode the branch comes from
    /// [`Rig::chain_latency_ms`], i.e. [`RemoteChain::duration_ms`], which
    /// includes *all* queueing on shared resources — behind other tenants
    /// and behind this session's own in-flight frames alike (a contended
    /// pool can't attribute waiting to one or the other).
    #[must_use]
    pub fn path_mtp_ms(&self, cpu_ms: f64, branch_ms: f64, compose_ms: f64) -> f64 {
        self.config.tracking_ms + cpu_ms + branch_ms + compose_ms + self.config.display_ms
    }

    /// Finalises the run into a summary with energy accounting.
    ///
    /// Only this session's mobile-side resources are counted into the
    /// energy budget (the headset pays for its own GPU, radio, decoder and
    /// accelerators — not for the shared server).
    #[must_use]
    pub fn finish(mut self, scheme: &str, app: &str, liwc_always_on: bool) -> RunSummary {
        // In a fleet the engine's makespan belongs to the whole schedule —
        // a slow tenant must not dilute a fast one's FPS or energy span, so
        // contended sessions close their span at their own last scanout.
        // Both span and busy times measure from this session's own origin
        // and baseline (non-zero only for gated/slot-reusing churn
        // joiners), so FPS and energy are per-tenant.
        let span = if self.contended && !self.display_ends.is_empty() {
            self.last_display_end()
        } else {
            self.engine.makespan()
        } - self.origin_ms;
        let base = &self.busy_baseline;
        let busy = BusyTimes {
            span_ms: span,
            gpu_ms: self.engine.busy_ms(self.gpu) - base.gpu_ms,
            radio_ms: self.engine.busy_ms(self.net_down) + self.engine.busy_ms(self.net_up)
                - base.radio_ms,
            vdec_ms: self.engine.busy_ms(self.vdec) - base.vdec_ms,
            cpu_ms: self.engine.busy_ms(self.cpu) - base.cpu_ms,
            liwc_ms: if liwc_always_on {
                span
            } else {
                self.engine.busy_ms(self.liwc) - base.liwc_ms
            },
            uca_ms: self.engine.busy_ms(self.uca) - base.uca_ms,
        };
        let energy =
            self.config
                .power
                .energy(&busy, self.config.gpu.frequency_mhz, self.config.network);
        // Fill in frame intervals from the display ends recorded at
        // submission (final the moment they were scheduled).
        let mut prev_end = self.origin_ms;
        for (record, end) in self.records.iter_mut().zip(&self.display_ends) {
            record.frame_interval_ms = end - prev_end;
            prev_end = *end;
        }
        RunSummary {
            scheme: scheme.to_owned(),
            app: app.to_owned(),
            frames: self.records,
            makespan_ms: span,
            busy,
            energy,
        }
    }
}
