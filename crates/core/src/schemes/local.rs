//! Local-only rendering: the commercial mobile-VR baseline.
//!
//! Everything happens on the mobile SoC: the CPU processes inputs and sets
//! up the frame, the GPU renders the full stereo scene at native resolution
//! and then runs ATW, and the panel scans out. No network is involved.
//! This is the Fig. 12 normalisation baseline and the Fig. 3(a) motivation
//! study.

use super::rig::Rig;
use super::Stepper;
use crate::metrics::FrameRecord;
use qvr_scene::{AppProfile, AppSession};

/// Per-frame stepper for the local-only baseline.
#[derive(Debug)]
pub(crate) struct LocalStepper {
    profile: AppProfile,
}

impl LocalStepper {
    pub(super) fn new(profile: AppProfile) -> Self {
        LocalStepper { profile }
    }
}

impl Stepper for LocalStepper {
    fn label(&self) -> &'static str {
        "Baseline"
    }

    fn step(&mut self, rig: &mut Rig, session: &mut AppSession) {
        let config = *rig.config();
        let frame = session.advance();
        let pace = rig.pace_deps();

        let cl = rig.engine.submit("CL", Some(rig.cpu), config.cl_ms, &pace);
        let ls = rig.engine.submit("LS", Some(rig.cpu), config.ls_ms, &[cl]);

        let workload = self.profile.full_workload(&frame);
        let render_ms = rig.mobile.stereo_frame_time(&workload).total_ms();
        let lr = rig.engine.submit("LR", Some(rig.gpu), render_ms, &[ls]);

        let atw_ms = rig.stereo_pass_ms(&self.profile, config.atw_cycles_per_px);
        let atw = rig.engine.submit("ATW", Some(rig.gpu), atw_ms, &[lr]);

        rig.display("display", &[atw]);

        rig.record(FrameRecord {
            frame_id: frame.frame_id,
            e1_deg: None,
            t_local_ms: render_ms + atw_ms,
            t_remote_ms: 0.0,
            mtp_ms: rig.path_mtp_ms(config.cl_ms + config.ls_ms, render_ms, atw_ms),
            frame_interval_ms: 0.0, // finalised by Rig::finish
            tx_bytes: 0.0,
            quality: None,
            resolution_reduction: 0.0,
            misprediction: false,
        });
    }
}

#[cfg(test)]
mod tests {
    use crate::schemes::{SchemeKind, SystemConfig};
    use qvr_scene::{AppProfile, Benchmark, CharacterizationApp};

    fn run(
        config: &SystemConfig,
        profile: AppProfile,
        frames: usize,
        seed: u64,
    ) -> crate::metrics::RunSummary {
        SchemeKind::LocalOnly.run(config, profile, frames, seed)
    }

    #[test]
    fn baseline_latency_in_fig3a_band() {
        // Fig. 3(a): high-quality apps on mobile silicon show 40–130 ms
        // end-to-end and single/low-double-digit FPS.
        let config = SystemConfig {
            gpu: qvr_gpu::GpuConfig::gen9_class(),
            ..SystemConfig::default()
        };
        for app in CharacterizationApp::all() {
            let s = run(&config, app.profile(), 40, 3);
            let mtp = s.mean_mtp_ms();
            assert!((30.0..160.0).contains(&mtp), "{app}: {mtp} ms");
            assert!(s.fps() < 40.0, "{app}: {} FPS should be low", s.fps());
        }
    }

    #[test]
    fn no_network_traffic() {
        let s = run(&SystemConfig::default(), Benchmark::Doom3H.profile(), 20, 1);
        assert_eq!(s.mean_tx_bytes(), 0.0);
        assert_eq!(s.busy.radio_ms, 0.0);
        assert_eq!(s.busy.vdec_ms, 0.0);
    }

    #[test]
    fn gpu_dominates_busy_time() {
        let s = run(&SystemConfig::default(), Benchmark::Grid.profile(), 20, 1);
        assert!(s.busy.gpu_ms > 0.8 * s.makespan_ms);
    }

    #[test]
    fn mtp_includes_tracking_and_display() {
        let config = SystemConfig::default();
        let s = run(&config, Benchmark::Doom3L.profile(), 10, 1);
        for f in &s.frames {
            assert!(f.mtp_ms >= config.tracking_ms + config.display_ms);
        }
    }
}
