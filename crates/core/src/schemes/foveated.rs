//! Collaborative foveated rendering: FFR, DFR, software Q-VR, and full Q-VR.
//!
//! One pipeline, three switches:
//!
//! * **Controller** — how `e1` is chosen per frame: fixed at the classic 5°
//!   fovea (FFR), by LIWC from intermediate hardware data (DFR, Q-VR), or by
//!   the lagged software rule (Q-VR-SW).
//! * **UCA** — whether composition + ATW run fused on the dedicated unit
//!   (Q-VR) or as two passes on the mobile GPU, contending with the next
//!   frame's rendering (everything else).
//! * Software control additionally serialises: the decision needs the
//!   previous frame's *rendered output* (Fig. 4-Ⓑ), so its control logic
//!   waits for the previous composition, which costs pipeline overlap.

use super::rig::Rig;
use super::{Stepper, SystemConfig};
use crate::foveation::FoveationPlan;
use crate::liwc::{LatencyPredictor, Liwc, SoftwareController};
use crate::metrics::FrameRecord;
use qvr_codec::RateController;
use qvr_hvs::DisplayGeometry;
use qvr_scene::{AppProfile, AppSession, TriangleFractionCache};
use qvr_sim::TaskId;

/// How the per-frame eccentricity is selected.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(super) enum Controller {
    /// Fixed eccentricity, degrees (FFR uses the classic 5° fovea).
    Fixed(f64),
    /// The LIWC hardware controller.
    Liwc,
    /// The lagged software controller.
    Software,
}

/// Pipeline switches for one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(super) struct Options {
    pub controller: Controller,
    pub uca: bool,
}

fn label(options: &Options) -> &'static str {
    match (options.controller, options.uca) {
        (Controller::Fixed(_), false) => "FFR",
        (Controller::Liwc, false) => "DFR",
        (Controller::Software, false) => "Q-VR-SW",
        (Controller::Liwc, true) => "Q-VR",
        (Controller::Fixed(_), true) => "FFR+UCA",
        (Controller::Software, true) => "Q-VR-SW+UCA",
    }
}

/// Fraction of UCA tiles crossed by a layer seam, from the plan geometry.
fn border_fraction(plan: &FoveationPlan, display: &DisplayGeometry, tile_px: u32) -> f64 {
    let ppd = (display.ppd_h() * display.ppd_v()).sqrt();
    let fovea_r_px = plan.e1_deg * ppd;
    let middle_half_px =
        (plan.e2_deg * ppd).min(f64::from(display.width_px().max(display.height_px())) / 2.0);
    // Tiles crossed by a curve ≈ 1.5 × length / tile edge.
    let seam_len_px = std::f64::consts::TAU * fovea_r_px + 8.0 * middle_half_px;
    let seam_tiles = 1.5 * seam_len_px / f64::from(tile_px);
    let total_tiles = f64::from(display.width_px().div_ceil(tile_px))
        * f64::from(display.height_px().div_ceil(tile_px));
    (seam_tiles / total_tiles).clamp(0.0, 1.0)
}

/// Per-frame stepper for the foveated family (FFR/DFR/Q-VR-SW/Q-VR).
#[derive(Debug)]
pub(crate) struct FoveatedStepper {
    profile: AppProfile,
    options: Options,
    native_px: f64,
    liwc: Liwc,
    sw: SoftwareController,
    prev_compose: Option<TaskId>,
    /// Per-frame triangle-fraction memo (gaze-keyed, bit-identical reuse).
    fovea_cache: TriangleFractionCache,
    /// Per-tenant closed-loop rate controller. Lives inside the stepper, so
    /// churn recycling a slot builds a fresh controller and a sharded cell
    /// carries exactly its own sessions' state — consulted only when
    /// `rate_control.enabled`.
    rc: RateController,
}

impl FoveatedStepper {
    pub(super) fn new(
        config: &SystemConfig,
        profile: AppProfile,
        seed: u64,
        options: Options,
    ) -> Self {
        let native_px =
            f64::from(profile.display.width_px()) * f64::from(profile.display.height_px());

        // Initial P(GPU) estimate: the full frame's triangles over its render
        // time, as a rough prior LIWC refines online.
        let prior_frame = AppSession::start(profile.clone(), seed).advance();
        let full_ms = qvr_gpu::GpuTimingModel::new(config.gpu)
            .stereo_frame_time(&profile.full_workload(&prior_frame))
            .total_ms();
        let p0 = prior_frame.triangles as f64 / full_ms.max(0.1);

        let liwc = Liwc::new(
            config.initial_e1_deg,
            config.liwc_initial_gradient,
            config.liwc_reward_alpha,
            LatencyPredictor::new(p0, config.liwc_predictor_alpha, config.cl_ms + config.ls_ms),
        );
        let sw = SoftwareController::new(
            config.initial_e1_deg,
            config.sw_gain_deg_per_ms,
            config.sw_lag_frames,
        );
        FoveatedStepper {
            profile,
            options,
            native_px,
            liwc,
            sw,
            prev_compose: None,
            fovea_cache: TriangleFractionCache::new(),
            rc: RateController::new(config.rate_control),
        }
    }
}

impl Stepper for FoveatedStepper {
    fn label(&self) -> &'static str {
        label(&self.options)
    }

    fn liwc_always_on(&self) -> bool {
        matches!(self.options.controller, Controller::Liwc)
    }

    fn step(&mut self, rig: &mut Rig, session: &mut AppSession) {
        let config = *rig.config();
        let options = self.options;
        let display = self.profile.display;
        let frame = session.advance();

        // Rate control: the quality chosen for this frame's streams (None
        // keeps the legacy closed-form byte path bit-identical).
        let rc_quality = config.rate_control.enabled.then(|| self.rc.quality());
        let motion = super::motion_index(&frame.delta);

        // --- eccentricity selection -------------------------------------
        let e1 = match options.controller {
            Controller::Fixed(e) => e,
            Controller::Software => self.sw.select(),
            Controller::Liwc => {
                let observed = rig.channel.observed_download_mbps();
                let base = config.network.base_latency_ms();
                let mar = config.mar;
                let size_model = config.size_model;
                let pq = config.periphery_quality;
                let stereo = config.stereo_stream_factor;
                let gaze = frame.sample.gaze;
                let detail = frame.content_detail;
                let profile = &self.profile;
                let fovea_cache = &mut self.fovea_cache;
                self.liwc
                    .select(
                        &frame.delta,
                        frame.triangles,
                        |e| profile.fovea_triangle_fraction_cached(&frame, e, fovea_cache),
                        |e| {
                            let plan = FoveationPlan::resolve(e, &display, &mar, gaze);
                            // LIWC's byte predictor must model the same
                            // path the frame will actually ship on, or the
                            // equilibrium it finds is for the wrong system.
                            let layer_bytes = match rc_quality {
                                Some(q) => plan.periphery_entropy_bytes(detail, motion, q),
                                None => plan.periphery_bytes(&size_model, detail, pq),
                            };
                            layer_bytes * stereo
                        },
                        observed,
                        base,
                    )
                    .e1_deg
            }
        };
        let plan = FoveationPlan::resolve(e1, &display, &config.mar, frame.sample.gaze);

        // --- control logic + setup --------------------------------------
        let mut pace = rig.pace_deps();
        let cl_ms = match options.controller {
            Controller::Software => {
                // Fig. 4-Ⓑ: the software decision waits for the previous
                // frame's rendered output (it runs in the app loop, which
                // blocks on present) and burns CPU time.
                if let Some(prev) = self.prev_compose {
                    pace.push(prev);
                }
                if let Some(prev_disp) = rig.last_display_task() {
                    pace.push(prev_disp);
                }
                config.cl_ms + config.sw_controller_ms
            }
            _ => config.cl_ms,
        };
        let cl = rig.engine.submit("CL", Some(rig.cpu), cl_ms, &pace);
        if matches!(options.controller, Controller::Liwc) {
            // The hardware lookup runs in parallel with setup; its latency
            // (table lookup + Eq. 2 arithmetic) is nanoseconds.
            rig.engine
                .submit("LIWC:select", Some(rig.liwc), 0.002, &[cl]);
        }
        let ls = rig.engine.submit("LS", Some(rig.cpu), config.ls_ms, &[cl]);
        let (send, send_ms) = rig.upload("pose+cfg", 1_536.0, &[ls]);

        // --- local fovea rendering ---------------------------------------
        let fovea_wl = self
            .profile
            .fovea_workload_cached(&frame, e1, &mut self.fovea_cache);
        let lr_ms = rig.mobile.stereo_frame_time(&fovea_wl).total_ms();
        let lr = rig.engine.submit("LR", Some(rig.gpu), lr_ms, &[ls]);

        // --- remote periphery --------------------------------------------
        let mid_px = plan.middle_region_px * plan.middle_rate.linear_scale().powi(2);
        let out_px = plan.outer_region_px * plan.outer_rate.linear_scale().powi(2);
        let periph_px = mid_px + out_px;
        let periph_wl = self
            .profile
            .full_workload(&frame)
            .scaled_region(periph_px / self.native_px, 1.0);
        let rr_ms = rig.remote_render_ms(&periph_wl);
        let bytes = match rc_quality {
            Some(q) => plan.periphery_entropy_bytes(frame.content_detail, motion, q),
            None => plan.periphery_bytes(
                &config.size_model,
                frame.content_detail,
                config.periphery_quality,
            ),
        } * config.stereo_stream_factor;
        let chain = rig.remote_chain("periph", rr_ms, bytes, periph_px * 2.0, &[send]);

        // --- composition + ATW -------------------------------------------
        let (compose_done, compose_path_ms) = if options.uca {
            let bf = border_fraction(&plan, &display, config.uca_timing.overhead.tile_px);
            let (early_ms, late_ms) = config.uca_timing.split_ms(
                display.width_px(),
                display.height_px(),
                bf,
                plan.fovea_area_fraction,
            );
            // Non-overlapping periphery tiles stream as soon as the decoder
            // has them; seam + fovea tiles additionally wait for LR. Only
            // the late part sits on the frame's critical path.
            let early = rig
                .engine
                .submit("UCA:outer", Some(rig.uca), early_ms, &[chain.done]);
            let late = rig
                .engine
                .submit("UCA:border", Some(rig.uca), late_ms, &[lr, early]);
            (late, late_ms)
        } else {
            let c_ms = rig.stereo_pass_ms(&self.profile, config.composition_cycles_per_px);
            let c = rig
                .engine
                .submit("C", Some(rig.gpu), c_ms, &[lr, chain.done]);
            let atw_ms = rig.stereo_pass_ms(&self.profile, config.atw_cycles_per_px);
            let atw = rig.engine.submit("ATW", Some(rig.gpu), atw_ms, &[c]);
            (atw, c_ms + atw_ms)
        };
        self.prev_compose = Some(compose_done);

        rig.display("display", &[compose_done]);

        // --- feedback ------------------------------------------------------
        let t_local = lr_ms;
        let t_remote = rig.chain_latency_ms(&chain);
        match options.controller {
            Controller::Liwc => {
                let fovea_frac =
                    self.profile
                        .fovea_triangle_fraction_cached(&frame, e1, &mut self.fovea_cache);
                self.liwc.observe(
                    frame.triangles,
                    fovea_frac,
                    t_local,
                    t_remote,
                    bytes,
                    rig.channel.observed_download_mbps(),
                    config.network.base_latency_ms(),
                );
                // Runtime updater executes in parallel with display.
                rig.engine
                    .submit("LIWC:update", Some(rig.liwc), 0.003, &[compose_done]);
            }
            Controller::Software => self.sw.observe(t_local, t_remote),
            Controller::Fixed(_) => {}
        }
        if rc_quality.is_some() {
            // Close the rate loop against this tenant's allocated share of
            // the link (not the observed throughput: a converged controller
            // must track its *fair* share, or tenants steal from each
            // other through the feedback).
            let target = RateController::target_bytes(
                rig.channel.allocated_download_mbps(),
                config.target_fps,
            );
            self.rc.observe(bytes, target);
        }

        rig.record(FrameRecord {
            frame_id: frame.frame_id,
            e1_deg: Some(e1),
            t_local_ms: t_local,
            t_remote_ms: t_remote,
            mtp_ms: rig.path_mtp_ms(
                cl_ms + config.ls_ms,
                t_local.max(send_ms + t_remote),
                compose_path_ms,
            ),
            frame_interval_ms: 0.0,
            tx_bytes: bytes,
            quality: rc_quality,
            resolution_reduction: plan.resolution_reduction(),
            misprediction: false,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::SchemeKind;
    use qvr_scene::Benchmark;

    fn cfg() -> SystemConfig {
        SystemConfig::default()
    }

    #[test]
    fn ffr_beats_baseline() {
        let config = cfg();
        for b in [Benchmark::Grid, Benchmark::Ut3] {
            let base = SchemeKind::LocalOnly.run(&config, b.profile(), 60, 3);
            let ffr = SchemeKind::Ffr.run(&config, b.profile(), 60, 3);
            assert!(
                ffr.mean_mtp_ms() < base.mean_mtp_ms() / 1.3,
                "{b}: FFR {:.1} vs baseline {:.1}",
                ffr.mean_mtp_ms(),
                base.mean_mtp_ms()
            );
        }
    }

    #[test]
    fn dfr_balances_better_than_ffr() {
        let config = cfg();
        let ffr = SchemeKind::Ffr.run(&config, Benchmark::Grid.profile(), 150, 3);
        let dfr = SchemeKind::Dfr.run(&config, Benchmark::Grid.profile(), 150, 3);
        // DFR grows the fovea until local and remote latencies meet; the
        // steady-state ratio must be closer to 1 than FFR's.
        let tail_ratio = |s: &crate::metrics::RunSummary| -> f64 {
            let tail: Vec<f64> = s
                .frames
                .iter()
                .skip(75)
                .map(|f| f.latency_ratio())
                .collect();
            tail.iter().sum::<f64>() / tail.len() as f64
        };
        let r_ffr = tail_ratio(&ffr);
        let r_dfr = tail_ratio(&dfr);
        assert!(
            (r_dfr - 1.0).abs() < (r_ffr - 1.0).abs(),
            "DFR ratio {r_dfr:.2} must beat FFR ratio {r_ffr:.2}"
        );
    }

    #[test]
    fn qvr_uses_uca_not_gpu_for_composition() {
        let config = cfg();
        let dfr = SchemeKind::Dfr.run(&config, Benchmark::Wolf.profile(), 60, 3);
        let qvr = SchemeKind::Qvr.run(&config, Benchmark::Wolf.profile(), 60, 3);
        assert!(qvr.busy.uca_ms > 0.0);
        assert!(dfr.busy.uca_ms == 0.0);
        assert!(
            qvr.busy.gpu_ms < dfr.busy.gpu_ms,
            "UCA must offload GPU work: {} vs {}",
            qvr.busy.gpu_ms,
            dfr.busy.gpu_ms
        );
    }

    #[test]
    fn qvr_converges_from_imbalanced_start() {
        // Fig. 14: starting at e1 = 5°, the latency ratio starts high and
        // converges near 1.
        let config = cfg();
        let s = SchemeKind::Qvr.run(&config, Benchmark::Hl2H.profile(), 300, 3);
        // Our LIWC converges within a handful of frames (the paper's takes
        // tens); the imbalance is visible on the very first frames.
        let early: Vec<f64> = s.frames.iter().take(2).map(|f| f.latency_ratio()).collect();
        let late: Vec<f64> = s
            .frames
            .iter()
            .skip(200)
            .map(|f| f.latency_ratio())
            .collect();
        let early_mean = early.iter().sum::<f64>() / early.len() as f64;
        let late_mean = late.iter().sum::<f64>() / late.len() as f64;
        assert!(
            early_mean > 1.5,
            "cold start must be imbalanced, got {early_mean:.2}"
        );
        assert!(
            (0.5..1.6).contains(&late_mean),
            "steady state must balance, got {late_mean:.2}"
        );
    }

    #[test]
    fn qvr_faster_than_software_qvr() {
        let config = cfg();
        let sw = SchemeKind::QvrSw.run(&config, Benchmark::Grid.profile(), 150, 3);
        let hw = SchemeKind::Qvr.run(&config, Benchmark::Grid.profile(), 150, 3);
        assert!(
            hw.fps() > 1.5 * sw.fps(),
            "hardware Q-VR {:.0} FPS vs software {:.0} FPS",
            hw.fps(),
            sw.fps()
        );
    }

    #[test]
    fn qvr_reduces_transmitted_data() {
        let config = cfg();
        let remote = SchemeKind::RemoteOnly.run(&config, Benchmark::Ut3.profile(), 80, 3);
        let qvr = SchemeKind::Qvr.run(&config, Benchmark::Ut3.profile(), 80, 3);
        let ratio = qvr.mean_tx_bytes() / remote.mean_tx_bytes();
        assert!(ratio < 0.5, "Q-VR transmit ratio {ratio:.2}");
    }

    #[test]
    fn light_apps_get_bigger_foveas() {
        // Table 4's cross-app ordering: the lighter the scene, the further
        // the balanced eccentricity moves out (Doom3-L 85.3° vs GRID 9.9°).
        let config = cfg();
        let light = SchemeKind::Qvr.run(&config, Benchmark::Doom3L.profile(), 300, 3);
        let heavy = SchemeKind::Qvr.run(&config, Benchmark::Grid.profile(), 300, 3);
        let e_light = light.mean_e1_deg(150).unwrap();
        let e_heavy = heavy.mean_e1_deg(150).unwrap();
        assert!(
            e_light > e_heavy + 8.0,
            "light app fovea {e_light:.1}° must exceed heavy app fovea {e_heavy:.1}°"
        );
    }

    #[test]
    fn heavy_apps_keep_small_fovea() {
        let config = cfg();
        let s = SchemeKind::Qvr.run(&config, Benchmark::Grid.profile(), 300, 3);
        let e1 = s.mean_e1_deg(150).unwrap();
        assert!(e1 < 35.0, "heavy app should offload, e1 {e1:.1}");
    }

    #[test]
    fn faster_network_shrinks_fovea() {
        let config = cfg();
        let wifi = SchemeKind::Qvr.run(&config, Benchmark::Hl2H.profile(), 250, 3);
        let config5g = cfg().with_network(qvr_net::NetworkPreset::Early5G);
        let five_g = SchemeKind::Qvr.run(&config5g, Benchmark::Hl2H.profile(), 250, 3);
        let e_wifi = wifi.mean_e1_deg(120).unwrap();
        let e_5g = five_g.mean_e1_deg(120).unwrap();
        assert!(
            e_5g < e_wifi,
            "faster download should offload more: 5G {e_5g:.1}° vs WiFi {e_wifi:.1}°"
        );
    }

    #[test]
    fn border_fraction_reasonable() {
        let display = DisplayGeometry::vive_pro_class();
        let mar = qvr_hvs::MarModel::default();
        let plan = FoveationPlan::resolve(20.0, &display, &mar, Default::default());
        let bf = border_fraction(&plan, &display, 32);
        assert!(bf > 0.02 && bf < 0.6, "border fraction {bf}");
    }

    #[test]
    fn labels_cover_design_points() {
        assert_eq!(
            label(&Options {
                controller: Controller::Fixed(5.0),
                uca: false
            }),
            "FFR"
        );
        assert_eq!(
            label(&Options {
                controller: Controller::Liwc,
                uca: true
            }),
            "Q-VR"
        );
        assert_eq!(
            label(&Options {
                controller: Controller::Software,
                uca: false
            }),
            "Q-VR-SW"
        );
    }
}
