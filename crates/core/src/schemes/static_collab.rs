//! Static collaborative rendering (the state of the art Q-VR improves on).
//!
//! Pre-declared interactive objects render locally; the background renders
//! remotely and is **prefetched** `lookahead` frames ahead against a pose
//! prediction, to hide the ~30 ms network fetch (Sec. 2.2–2.3). The scheme
//! inherits every weakness the paper characterises:
//!
//! * the remote workload (and hence transmitted bytes — color **and** depth
//!   for composition) is not reduced at all;
//! * prefetching needs pose prediction ≥ 3 frames out; when the user moves,
//!   the prediction misses and the fetch lands on the critical path;
//! * composition is depth-based embedding on the GPU (collision detection),
//!   which together with ATW contends with the next frame's rendering.

use super::rig::{RemoteChain, Rig};
use super::Stepper;
use crate::metrics::FrameRecord;
use qvr_scene::{AppProfile, AppSession, FrameState, MotionDelta};
use std::collections::VecDeque;

/// Per-frame stepper for static collaborative rendering.
#[derive(Debug)]
pub(crate) struct StaticStepper {
    profile: AppProfile,
    native_px: f64,
    lookahead: usize,
    frame_idx: usize,
    /// Prefetches in flight for frame i+lookahead; `None` when the frame's
    /// motion was calm enough to reuse the cached background instead
    /// (FlashBack-style memoization).
    prefetched: VecDeque<Option<(RemoteChain, FrameState)>>,
    /// Pose at which the cached background was (pre)fetched.
    cache_pose: Option<FrameState>,
}

impl StaticStepper {
    pub(super) fn new(profile: AppProfile, lookahead: usize) -> Self {
        let native_px =
            f64::from(profile.display.width_px()) * f64::from(profile.display.height_px());
        StaticStepper {
            profile,
            native_px,
            lookahead,
            frame_idx: 0,
            prefetched: VecDeque::new(),
            cache_pose: None,
        }
    }
}

impl Stepper for StaticStepper {
    fn label(&self) -> &'static str {
        "Static"
    }

    fn step(&mut self, rig: &mut Rig, session: &mut AppSession) {
        let config = *rig.config();
        let i = self.frame_idx;
        self.frame_idx += 1;
        let frame = session.advance();
        let pace = rig.pace_deps();

        let cl = rig.engine.submit("CL", Some(rig.cpu), config.cl_ms, &pace);
        let ls = rig.engine.submit("LS", Some(rig.cpu), config.ls_ms, &[cl]);
        let (send, _send_ms) = rig.upload("pose", 1_024.0, &[ls]);

        let bg_workload = self.profile.background_workload(&frame);
        let bg_bytes = (config.size_model.frame_bytes(
            self.native_px.round() as u64,
            frame.content_detail,
            1.0,
        ) + config
            .size_model
            .depth_bytes(self.native_px.round() as u64, 1.0))
            * config.stereo_stream_factor;
        let bg_render_ms = rig.remote_render_ms(&bg_workload);

        // Issue the prefetch for frame i + lookahead using today's pose —
        // unless the view is calm enough that the cache will still be valid.
        let cache_fresh = self.cache_pose.is_some_and(|p| {
            MotionDelta::between(&p.sample, &frame.sample).rotation_magnitude()
                < config.static_cache_rotation_deg
        });
        let mut tx_bytes = 0.0;
        if cache_fresh {
            self.prefetched.push_back(None);
        } else {
            let chain = rig.remote_chain(
                &format!("bg{}", i + self.lookahead),
                bg_render_ms,
                bg_bytes,
                self.native_px * 2.0,
                &[send],
            );
            tx_bytes += chain.bytes;
            self.prefetched.push_back(Some((chain, frame)));
        }

        // Local rendering of the interactive objects.
        let int_workload = self.profile.interactive_workload(&frame);
        let render_ms = rig.mobile.stereo_frame_time(&int_workload).total_ms();
        let lr = rig.engine.submit("LR", Some(rig.gpu), render_ms, &[ls]);

        // Background availability for *this* frame.
        let mut misprediction = false;

        let (bg_done, bg_critical_ms, bg_nominal_ms): (Option<qvr_sim::TaskId>, f64, f64) =
            if i < self.lookahead {
                // Cold start: fetch synchronously.
                let sync = rig.remote_chain(
                    "bg:sync",
                    bg_render_ms,
                    bg_bytes,
                    self.native_px * 2.0,
                    &[send],
                );
                tx_bytes += sync.bytes;
                self.cache_pose = Some(frame);
                let latency = rig.chain_latency_ms(&sync);
                (Some(sync.done), latency, sync.nominal_ms)
            } else {
                match self.prefetched.pop_front().expect("prefetch queue primed") {
                    // Calm view: composited against the cached background.
                    None => (None, 0.0, 0.0),
                    Some((chain, predicted_from)) => {
                        // Prediction error: how far the head actually moved
                        // since the prefetch pose was captured.
                        let drift = MotionDelta::between(&predicted_from.sample, &frame.sample);
                        self.cache_pose = Some(predicted_from);
                        if drift.rotation_magnitude() > config.misprediction_rotation_deg {
                            misprediction = true;
                            // The prefetched background is unusable: blocking
                            // re-fetch, queued behind all in-flight traffic —
                            // this is where static's unreduced data volume
                            // really hurts (Sec. 2.3, Challenge II).
                            let sync = rig.remote_chain(
                                "bg:refetch",
                                bg_render_ms,
                                bg_bytes,
                                self.native_px * 2.0,
                                &[send],
                            );
                            tx_bytes += sync.bytes;
                            // Critical-path cost: the re-fetch itself plus
                            // the position-mismatch recovery (one frame of
                            // re-setup), but the client flushes the stale
                            // prefetch queue rather than waiting behind it.
                            let latency = rig.chain_latency_ms(&sync);
                            (Some(sync.done), latency * 1.25, sync.nominal_ms)
                        } else {
                            // Arrived in the background, off the critical path.
                            (Some(chain.done), 0.0, chain.nominal_ms)
                        }
                    }
                }
            };

        // Depth-based embedding composition + ATW, both on the GPU.
        let c_ms = rig.stereo_pass_ms(&self.profile, config.static_composition_cycles_per_px);
        let mut c_deps = vec![lr];
        c_deps.extend(bg_done);
        let c = rig.engine.submit("C", Some(rig.gpu), c_ms, &c_deps);
        let atw_ms = rig.stereo_pass_ms(&self.profile, config.atw_cycles_per_px);
        let atw = rig.engine.submit("ATW", Some(rig.gpu), atw_ms, &[c]);

        rig.display("display", &[atw]);

        rig.record(FrameRecord {
            frame_id: frame.frame_id,
            e1_deg: None,
            t_local_ms: render_ms,
            // The steady-state network cost per frame is one background
            // transfer whether or not it hid; mispredictions put it on the
            // critical path (bg_critical_ms) as well.
            t_remote_ms: bg_nominal_ms,
            mtp_ms: rig.path_mtp_ms(
                config.cl_ms + config.ls_ms,
                render_ms.max(bg_critical_ms),
                c_ms + atw_ms,
            ),
            frame_interval_ms: 0.0,
            tx_bytes,
            quality: None,
            resolution_reduction: 0.0,
            misprediction,
        });
    }
}

#[cfg(test)]
mod tests {
    use crate::schemes::{SchemeKind, SystemConfig};
    use qvr_scene::{AppProfile, Benchmark};

    fn run(
        config: &SystemConfig,
        profile: AppProfile,
        frames: usize,
        seed: u64,
    ) -> crate::metrics::RunSummary {
        SchemeKind::StaticCollab.run(config, profile, frames, seed)
    }

    #[test]
    fn static_beats_local_baseline_on_latency() {
        let config = SystemConfig::default();
        for b in [Benchmark::Grid, Benchmark::Hl2H] {
            let local = SchemeKind::LocalOnly.run(&config, b.profile(), 40, 3);
            let st = run(&config, b.profile(), 40, 3);
            assert!(
                st.mean_mtp_ms() < local.mean_mtp_ms(),
                "{b}: static {:.1} vs local {:.1}",
                st.mean_mtp_ms(),
                local.mean_mtp_ms()
            );
        }
    }

    #[test]
    fn mispredictions_happen_under_motion() {
        let config = SystemConfig::default();
        // GRID uses a frantic motion profile.
        let s = run(&config, Benchmark::Grid.profile(), 120, 3);
        let rate = s.misprediction_rate();
        assert!(rate > 0.02, "some prefetches must miss, rate {rate}");
        assert!(rate < 0.9, "not all prefetches miss, rate {rate}");
    }

    #[test]
    fn transmitted_data_not_reduced() {
        // Fig. 13: the static approach does not reduce the transmitted data
        // (it ships full-resolution background + depth every frame).
        let config = SystemConfig::default();
        let st = run(&config, Benchmark::Doom3H.profile(), 40, 3);
        let remote = SchemeKind::RemoteOnly.run(&config, Benchmark::Doom3H.profile(), 40, 3);
        assert!(
            st.mean_tx_bytes() >= remote.mean_tx_bytes(),
            "static ships color+depth: {} vs remote-only {}",
            st.mean_tx_bytes(),
            remote.mean_tx_bytes()
        );
    }

    #[test]
    fn interactive_latency_varies_with_user_motion() {
        // The Fig. 5 effect: the same app's local rendering time swings with
        // interaction intensity.
        let config = SystemConfig::default();
        let s = run(&config, Benchmark::Grid.profile(), 200, 3);
        let min = s
            .frames
            .iter()
            .map(|f| f.t_local_ms)
            .fold(f64::INFINITY, f64::min);
        let max = s.frames.iter().map(|f| f.t_local_ms).fold(0.0, f64::max);
        assert!(
            max > 1.5 * min,
            "local latency must swing: {min:.1}..{max:.1} ms"
        );
    }

    #[test]
    fn misses_90hz_for_heavy_apps() {
        let config = SystemConfig::default();
        let s = run(&config, Benchmark::Grid.profile(), 60, 3);
        assert!(
            !s.meets_target_fps(90.0, 10),
            "static cannot hold 90 Hz on GRID"
        );
    }
}
