//! Remote-only rendering: cloud streaming (paper Fig. 3b).
//!
//! The mobile side uploads the pose, the server renders the full stereo
//! frame and streams it back compressed; the mobile decodes and time-warps.
//! Under present-day networks the transmission dominates (the paper
//! measures ≈ 63 % of end-to-end latency), which is the second half of the
//! motivation study.

use super::rig::Rig;
use super::{Stepper, SystemConfig};
use crate::metrics::FrameRecord;
use qvr_codec::{EntropyModel, RateController};
use qvr_scene::{AppProfile, AppSession};

/// Per-frame stepper for remote-only streaming.
#[derive(Debug)]
pub(crate) struct RemoteStepper {
    profile: AppProfile,
    native_px: f64,
    /// Per-tenant rate controller (consulted only when enabled); stepper-
    /// local, so churn recycling and shard cells get fresh, disjoint state.
    rc: RateController,
}

impl RemoteStepper {
    pub(super) fn new(config: &SystemConfig, profile: AppProfile) -> Self {
        let native_px =
            f64::from(profile.display.width_px()) * f64::from(profile.display.height_px());
        RemoteStepper {
            profile,
            native_px,
            rc: RateController::new(config.rate_control),
        }
    }
}

impl Stepper for RemoteStepper {
    fn label(&self) -> &'static str {
        "Remote"
    }

    fn step(&mut self, rig: &mut Rig, session: &mut AppSession) {
        let config = *rig.config();
        let frame = session.advance();
        let pace = rig.pace_deps();

        let cl = rig.engine.submit("CL", Some(rig.cpu), config.cl_ms, &pace);
        let (send, send_ms) = rig.upload("pose", 1_024.0, &[cl]);

        let workload = self.profile.full_workload(&frame);
        let render_ms = rig.remote_render_ms(&workload);
        let rc_quality = config.rate_control.enabled.then(|| self.rc.quality());
        let bytes = match rc_quality {
            // Full-frame stream: native resolution (no VRS), fovea-grade
            // statistics (eccentricity 0 — the whole frame may be looked at).
            Some(q) => EntropyModel::layer(
                self.native_px,
                frame.content_detail,
                super::motion_index(&frame.delta),
                1.0,
                0.0,
            )
            .frame_bytes(q),
            None => config.size_model.frame_bytes(
                self.native_px.round() as u64,
                frame.content_detail,
                1.0,
            ),
        } * config.stereo_stream_factor;
        let chain = rig.remote_chain("remote", render_ms, bytes, self.native_px * 2.0, &[send]);
        if rc_quality.is_some() {
            let target = RateController::target_bytes(
                rig.channel.allocated_download_mbps(),
                config.target_fps,
            );
            self.rc.observe(bytes, target);
        }

        let atw_ms = rig.stereo_pass_ms(&self.profile, config.atw_cycles_per_px);
        let atw = rig
            .engine
            .submit("ATW", Some(rig.gpu), atw_ms, &[chain.done]);

        rig.display("display", &[atw]);

        let t_remote = rig.chain_latency_ms(&chain);
        rig.record(FrameRecord {
            frame_id: frame.frame_id,
            e1_deg: None,
            t_local_ms: atw_ms,
            t_remote_ms: t_remote,
            mtp_ms: rig.path_mtp_ms(config.cl_ms, send_ms + t_remote, atw_ms),
            frame_interval_ms: 0.0,
            tx_bytes: chain.bytes,
            quality: rc_quality,
            resolution_reduction: 0.0,
            misprediction: false,
        });
    }
}

#[cfg(test)]
mod tests {
    use crate::schemes::{SchemeKind, SystemConfig};
    use qvr_scene::{AppProfile, Benchmark, CharacterizationApp};

    fn run(
        config: &SystemConfig,
        profile: AppProfile,
        frames: usize,
        seed: u64,
    ) -> crate::metrics::RunSummary {
        SchemeKind::RemoteOnly.run(config, profile, frames, seed)
    }

    #[test]
    fn transmission_dominates_like_fig3b() {
        // The paper: transmission ≈ 63 % of remote-only end-to-end latency.
        let config = SystemConfig {
            gpu: qvr_gpu::GpuConfig::gen9_class(),
            ..SystemConfig::default()
        };
        for app in CharacterizationApp::all() {
            let s = run(&config, app.profile(), 40, 3);
            let mtp = s.mean_mtp_ms();
            let remote_share: f64 = s
                .frames
                .iter()
                .map(|f| f.t_remote_ms / f.mtp_ms)
                .sum::<f64>()
                / s.frames.len() as f64;
            assert!((30.0..80.0).contains(&mtp), "{app}: {mtp} ms");
            assert!(
                remote_share > 0.45,
                "{app}: remote chain should dominate, got {remote_share:.2}"
            );
        }
    }

    #[test]
    fn remote_beats_local_for_heavy_apps_but_misses_target() {
        let config = SystemConfig::default();
        let local = SchemeKind::LocalOnly.run(&config, Benchmark::Grid.profile(), 30, 3);
        let remote = run(&config, Benchmark::Grid.profile(), 30, 3);
        assert!(remote.mean_mtp_ms() < local.mean_mtp_ms());
        // But still misses 90 Hz / 25 ms MTP.
        assert!(remote.mean_mtp_ms() > 25.0);
    }

    #[test]
    fn downlink_carries_full_frames() {
        let config = SystemConfig::default();
        let s = run(&config, Benchmark::Doom3H.profile(), 20, 2);
        // Full 1920x2160 stereo frames: hundreds of KB each.
        assert!(s.mean_tx_bytes() > 300_000.0);
        assert!(s.busy.radio_ms > 0.0);
        assert!(s.busy.vdec_ms > 0.0);
    }

    #[test]
    fn local_gpu_only_does_atw() {
        let config = SystemConfig::default();
        let s = run(&config, Benchmark::Wolf.profile(), 20, 2);
        // ATW alone is a few ms per frame; the GPU must be mostly idle.
        assert!(s.busy.gpu_ms < 0.5 * s.makespan_ms);
    }
}
