//! End-to-end frame pipelines for every design point in the evaluation.
//!
//! | Kind | Paper name | Where work runs |
//! |---|---|---|
//! | [`SchemeKind::LocalOnly`] | Baseline (commercial mobile VR) | everything on the mobile GPU |
//! | [`SchemeKind::RemoteOnly`] | remote-only rendering (Fig. 3b) | everything on the server, streamed |
//! | [`SchemeKind::StaticCollab`] | Static collaborative rendering | interactive objects local, prefetched background remote |
//! | [`SchemeKind::Ffr`] | FFR | fovea (fixed e1 = 5°) local, periphery remote |
//! | [`SchemeKind::Dfr`] | DFR | FFR + LIWC-driven dynamic e1 |
//! | [`SchemeKind::QvrSw`] | pure-software Q-VR (Fig. 12 "SW") | dynamic e1 from software-measured latencies |
//! | [`SchemeKind::Qvr`] | Q-VR | LIWC + UCA |
//!
//! Every scheme shares one [`SystemConfig`] (Table 2 defaults), one seeded
//! app session, and the same discrete-event rig, so comparisons are
//! apples-to-apples.

mod foveated;
mod local;
mod remote;
mod rig;
mod static_collab;

pub use rig::{RemoteChain, Rig, ServerPool};

use crate::metrics::RunSummary;
use crate::session::Session;
use crate::uca::UcaTiming;
use qvr_codec::{CodecLatencyModel, RateControlConfig, SizeModel};
use qvr_energy::{ApPowerModel, PowerModel, ServerPowerModel};
use qvr_gpu::{GpuConfig, RemoteGpuModel};
use qvr_hvs::MarModel;
use qvr_net::NetworkPreset;
use qvr_scene::AppProfile;
use qvr_scene::AppSession;
use std::fmt;

/// Full system configuration shared by all schemes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemConfig {
    /// Mobile GPU (Table 2).
    pub gpu: GpuConfig,
    /// Remote multi-GPU server.
    pub remote: RemoteGpuModel,
    /// Network technology.
    pub network: NetworkPreset,
    /// Acuity model.
    pub mar: MarModel,
    /// Compressed-size model.
    pub size_model: SizeModel,
    /// Per-tenant closed-loop rate control (default **off**: tx bytes come
    /// from the closed-form size model, bit-identical to the pinned
    /// goldens; on: entropy-modeled bytes at the controller's quality).
    pub rate_control: RateControlConfig,
    /// Hardware codec latency model.
    pub codec_latency: CodecLatencyModel,
    /// Power model for energy accounting (the headset's own hardware).
    pub power: PowerModel,
    /// Per-unit power of the shared remote server pool (fleet-level energy
    /// accounting via the telemetry `EnergyMeter`).
    pub server_power: ServerPowerModel,
    /// Power of the access point serving the fleet's shared link.
    pub ap_power: ApPowerModel,
    /// Sensor-data transport latency counted into MTP, ms (Sec. 7: 2 ms).
    pub tracking_ms: f64,
    /// HMD scanout latency counted into MTP, ms (Sec. 5: 5 ms).
    pub display_ms: f64,
    /// Control-logic (CL) CPU time per frame, ms.
    pub cl_ms: f64,
    /// Local-setup (LS) CPU time per frame, ms.
    pub ls_ms: f64,
    /// Extra CPU time for the pure-software controller's decision, ms.
    pub sw_controller_ms: f64,
    /// GPU composition cost for foveated layers, cycles per output pixel.
    pub composition_cycles_per_px: f64,
    /// GPU composition cost for the static scheme's depth-based embedding,
    /// cycles per output pixel (collision detection makes it pricier).
    pub static_composition_cycles_per_px: f64,
    /// GPU ATW cost, cycles per output pixel.
    pub atw_cycles_per_px: f64,
    /// Bytes multiplier for the second eye under inter-view prediction.
    pub stereo_stream_factor: f64,
    /// Encoder-quality factor for periphery streams (Eq. 1's "*Periphery
    /// Quality" knob).
    pub periphery_quality: f64,
    /// Streaming chunks per frame (render/encode/transmit/decode overlap).
    pub tx_chunks: u32,
    /// Static scheme's prefetch look-ahead, frames (Sec. 2.3: ~3).
    pub prefetch_lookahead: u32,
    /// Head-rotation threshold over the look-ahead window beyond which the
    /// prefetched background is unusable, degrees.
    pub misprediction_rotation_deg: f64,
    /// Head-rotation threshold under which the static scheme reuses its
    /// cached background instead of fetching (FlashBack-style memoization).
    pub static_cache_rotation_deg: f64,
    /// LIWC table initialisation gradient, ms/degree.
    pub liwc_initial_gradient: f64,
    /// LIWC reward smoothing α.
    pub liwc_reward_alpha: f64,
    /// LIWC predictor refinement α.
    pub liwc_predictor_alpha: f64,
    /// Software controller's proportional gain, degrees per ms of gap.
    pub sw_gain_deg_per_ms: f64,
    /// Software controller's measurement lag, frames.
    pub sw_lag_frames: usize,
    /// Initial eccentricity for dynamic controllers, degrees (paper: 5°).
    pub initial_e1_deg: f64,
    /// UCA timing model.
    pub uca_timing: UcaTiming,
    /// Frames allowed in flight (render-ahead), ≥ 1.
    pub frames_in_flight: u32,
    /// Target refresh rate, Hz.
    pub target_fps: f64,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            gpu: GpuConfig::mali_g76_class(),
            remote: RemoteGpuModel::mcm_8_gpu(),
            network: NetworkPreset::WiFi,
            mar: MarModel::default(),
            size_model: SizeModel::default(),
            rate_control: RateControlConfig::default(),
            codec_latency: CodecLatencyModel::mobile_soc(),
            power: PowerModel::default(),
            server_power: ServerPowerModel::default(),
            ap_power: ApPowerModel::default(),
            tracking_ms: 2.0,
            display_ms: 5.0,
            cl_ms: 0.3,
            ls_ms: 0.4,
            sw_controller_ms: 1.2,
            composition_cycles_per_px: 4.0,
            static_composition_cycles_per_px: 9.0,
            atw_cycles_per_px: 5.0,
            stereo_stream_factor: 1.35,
            periphery_quality: 0.9,
            tx_chunks: 4,
            prefetch_lookahead: 3,
            misprediction_rotation_deg: 1.5,
            static_cache_rotation_deg: 0.8,
            liwc_initial_gradient: -1.0,
            liwc_reward_alpha: 0.3,
            liwc_predictor_alpha: 0.3,
            sw_gain_deg_per_ms: 0.4,
            sw_lag_frames: 3,
            initial_e1_deg: 5.0,
            uca_timing: UcaTiming::default(),
            frames_in_flight: 2,
            target_fps: 90.0,
        }
    }
}

impl SystemConfig {
    /// Returns a copy with the mobile GPU clocked differently (the Table 4
    /// / Fig. 15 frequency axis).
    #[must_use]
    pub fn with_gpu_frequency_mhz(mut self, mhz: f64) -> Self {
        self.gpu = self.gpu.with_frequency_mhz(mhz);
        self
    }

    /// Returns a copy on a different network technology.
    #[must_use]
    pub fn with_network(mut self, preset: NetworkPreset) -> Self {
        self.network = preset;
        self
    }

    /// Returns a copy with the per-tenant rate controller configured
    /// (pass [`RateControlConfig::on`] to switch the content-true,
    /// entropy-modeled byte path on).
    #[must_use]
    pub fn with_rate_control(mut self, rate_control: RateControlConfig) -> Self {
        self.rate_control = rate_control;
        self
    }
}

/// Maps a frame's head-motion delta to the entropy model's inter-frame
/// coherence index in `[0, 1]`: around 1.5° of rotation in one frame (a
/// fast head turn at 90 Hz) destroys block reuse entirely.
pub(crate) fn motion_index(delta: &qvr_scene::MotionDelta) -> f64 {
    (delta.rotation_magnitude() / 1.5).clamp(0.0, 1.0)
}

impl fmt::Display for SystemConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} | {} | {}", self.gpu, self.network, self.remote)
    }
}

/// One frame of scheme-specific pipeline logic, driven by a [`Session`].
///
/// Extracting the per-frame body out of the old whole-run loops is what
/// lets heterogeneous sessions (different apps and schemes per user)
/// interleave on shared fleet resources: the session engine owns the loop,
/// the stepper owns only what one frame submits.
pub(crate) trait Stepper: std::fmt::Debug {
    /// Submits one frame's tasks and records its [`crate::metrics::FrameRecord`].
    fn step(&mut self, rig: &mut Rig, session: &mut AppSession);

    /// The paper's label for this design point.
    fn label(&self) -> &'static str;

    /// Whether the LIWC unit is always powered for energy accounting.
    fn liwc_always_on(&self) -> bool {
        false
    }
}

/// The closed set of steppers, dispatched statically: a [`Session`] holds
/// one inline instead of a `Box<dyn Stepper>`, so the per-frame step is a
/// direct (inlinable) call and opening a session allocates no stepper box.
#[derive(Debug)]
pub(crate) enum AnyStepper {
    /// Traditional local rendering.
    Local(local::LocalStepper),
    /// Full-frame remote streaming.
    Remote(remote::RemoteStepper),
    /// Static collaborative rendering.
    Static(static_collab::StaticStepper),
    /// The foveated family (FFR/DFR/Q-VR-SW/Q-VR).
    Foveated(foveated::FoveatedStepper),
}

impl Stepper for AnyStepper {
    fn step(&mut self, rig: &mut Rig, session: &mut AppSession) {
        match self {
            AnyStepper::Local(s) => s.step(rig, session),
            AnyStepper::Remote(s) => s.step(rig, session),
            AnyStepper::Static(s) => s.step(rig, session),
            AnyStepper::Foveated(s) => s.step(rig, session),
        }
    }

    fn label(&self) -> &'static str {
        match self {
            AnyStepper::Local(s) => s.label(),
            AnyStepper::Remote(s) => s.label(),
            AnyStepper::Static(s) => s.label(),
            AnyStepper::Foveated(s) => s.label(),
        }
    }

    fn liwc_always_on(&self) -> bool {
        match self {
            AnyStepper::Local(s) => s.liwc_always_on(),
            AnyStepper::Remote(s) => s.liwc_always_on(),
            AnyStepper::Static(s) => s.liwc_always_on(),
            AnyStepper::Foveated(s) => s.liwc_always_on(),
        }
    }
}

/// The seven design points of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// Traditional local rendering on the mobile GPU (the Fig. 12 baseline).
    LocalOnly,
    /// Server rendering with full-frame streaming (Fig. 3b).
    RemoteOnly,
    /// Static collaborative rendering with background prefetching.
    StaticCollab,
    /// Collaborative foveated rendering, fixed classic fovea (e1 = 5°).
    Ffr,
    /// FFR + LIWC dynamic eccentricity (no UCA).
    Dfr,
    /// Pure-software Q-VR: software eccentricity control, GPU composition.
    QvrSw,
    /// Full Q-VR: LIWC + UCA.
    Qvr,
}

impl SchemeKind {
    /// All schemes, baseline first.
    #[must_use]
    pub fn all() -> [SchemeKind; 7] {
        [
            SchemeKind::LocalOnly,
            SchemeKind::RemoteOnly,
            SchemeKind::StaticCollab,
            SchemeKind::Ffr,
            SchemeKind::Dfr,
            SchemeKind::QvrSw,
            SchemeKind::Qvr,
        ]
    }

    /// Whether this scheme moves frame data over the wireless link (every
    /// design point except pure local rendering). Fleets use this to count
    /// a shared channel's real occupancy.
    #[must_use]
    pub fn uses_network(&self) -> bool {
        !matches!(self, SchemeKind::LocalOnly)
    }

    /// Whether this scheme carries a *dynamic* workload controller (LIWC
    /// or the software controller) that re-balances local/remote work in
    /// response to contention. Server scheduling policies
    /// ([`crate::sched::ServerPolicy`]) derive each tenant's class from
    /// this: adaptive schemes get protected placement, fixed-split schemes
    /// (remote-only, static collaborative, FFR's fixed fovea) ride
    /// best-effort.
    #[must_use]
    pub fn is_adaptive(&self) -> bool {
        matches!(self, SchemeKind::Dfr | SchemeKind::QvrSw | SchemeKind::Qvr)
    }

    /// The server scheduling class this scheme belongs to (see
    /// [`SchemeKind::is_adaptive`]).
    #[must_use]
    pub fn tenant_class(&self) -> crate::sched::TenantClass {
        if self.is_adaptive() {
            crate::sched::TenantClass::Adaptive
        } else {
            crate::sched::TenantClass::BestEffort
        }
    }

    /// The paper's label.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            SchemeKind::LocalOnly => "Baseline",
            SchemeKind::RemoteOnly => "Remote",
            SchemeKind::StaticCollab => "Static",
            SchemeKind::Ffr => "FFR",
            SchemeKind::Dfr => "DFR",
            SchemeKind::QvrSw => "Q-VR-SW",
            SchemeKind::Qvr => "Q-VR",
        }
    }

    /// Builds this scheme's per-frame pipeline logic.
    pub(crate) fn stepper(
        &self,
        config: &SystemConfig,
        profile: AppProfile,
        seed: u64,
    ) -> AnyStepper {
        match self {
            SchemeKind::LocalOnly => AnyStepper::Local(local::LocalStepper::new(profile)),
            SchemeKind::RemoteOnly => {
                AnyStepper::Remote(remote::RemoteStepper::new(config, profile))
            }
            SchemeKind::StaticCollab => AnyStepper::Static(static_collab::StaticStepper::new(
                profile,
                config.prefetch_lookahead as usize,
            )),
            SchemeKind::Ffr => AnyStepper::Foveated(foveated::FoveatedStepper::new(
                config,
                profile,
                seed,
                foveated::Options {
                    controller: foveated::Controller::Fixed(5.0),
                    uca: false,
                },
            )),
            SchemeKind::Dfr => AnyStepper::Foveated(foveated::FoveatedStepper::new(
                config,
                profile,
                seed,
                foveated::Options {
                    controller: foveated::Controller::Liwc,
                    uca: false,
                },
            )),
            SchemeKind::QvrSw => AnyStepper::Foveated(foveated::FoveatedStepper::new(
                config,
                profile,
                seed,
                foveated::Options {
                    controller: foveated::Controller::Software,
                    uca: false,
                },
            )),
            SchemeKind::Qvr => AnyStepper::Foveated(foveated::FoveatedStepper::new(
                config,
                profile,
                seed,
                foveated::Options {
                    controller: foveated::Controller::Liwc,
                    uca: true,
                },
            )),
        }
    }

    /// Opens a private single-tenant session of this scheme: a per-frame
    /// stepper over a dedicated rig (own engine, own channel, own server).
    /// Step it `n` times and [`Session::finish`] it to reproduce exactly
    /// what [`SchemeKind::run`] returns.
    #[must_use]
    pub fn session(&self, config: &SystemConfig, profile: AppProfile, seed: u64) -> Session {
        Session::private(*self, config, profile, seed)
    }

    /// Runs `frames` frames of an app under this scheme.
    ///
    /// Delegates to a single-session fleet with private resources (one
    /// engine, one channel, a dedicated server) — the classic one-user
    /// evaluation as a degenerate fleet.
    #[must_use]
    pub fn run(
        &self,
        config: &SystemConfig,
        profile: AppProfile,
        frames: usize,
        seed: u64,
    ) -> RunSummary {
        crate::fleet::Fleet::solo(*self, config, profile, frames, seed)
    }
}

impl fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qvr_scene::Benchmark;

    #[test]
    fn default_config_matches_table2() {
        let c = SystemConfig::default();
        assert_eq!(c.gpu.frequency_mhz, 500.0);
        assert_eq!(c.network, NetworkPreset::WiFi);
        assert_eq!(c.tracking_ms, 2.0);
        assert_eq!(c.display_ms, 5.0);
        assert_eq!(c.prefetch_lookahead, 3);
        assert_eq!(c.initial_e1_deg, 5.0);
    }

    #[test]
    fn builders_override() {
        let c = SystemConfig::default()
            .with_gpu_frequency_mhz(300.0)
            .with_network(NetworkPreset::Early5G);
        assert_eq!(c.gpu.frequency_mhz, 300.0);
        assert_eq!(c.network, NetworkPreset::Early5G);
    }

    #[test]
    fn all_schemes_run_and_produce_frames() {
        let config = SystemConfig::default();
        for kind in SchemeKind::all() {
            let s = kind.run(&config, Benchmark::Doom3L.profile(), 20, 7);
            assert_eq!(s.len(), 20, "{kind}");
            assert!(s.mean_mtp_ms() > 0.0, "{kind}");
            assert!(s.fps() > 0.0, "{kind}");
            assert!(s.makespan_ms > 0.0, "{kind}");
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let config = SystemConfig::default();
        let a = SchemeKind::Qvr.run(&config, Benchmark::Grid.profile(), 30, 5);
        let b = SchemeKind::Qvr.run(&config, Benchmark::Grid.profile(), 30, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(SchemeKind::StaticCollab.label(), "Static");
        assert_eq!(SchemeKind::Qvr.label(), "Q-VR");
    }

    #[test]
    fn rate_control_is_opt_in() {
        // The content-true rate path must stay off by default: every golden
        // (fleet hashes, figure tables, energy sweeps) pins the closed-form
        // size-model byte path, and `enabled: false` is what guarantees the
        // legacy expressions are evaluated verbatim.
        assert!(!SystemConfig::default().rate_control.enabled);
        let on = SystemConfig::default().with_rate_control(qvr_codec::RateControlConfig::on());
        assert!(on.rate_control.enabled);
    }
}
