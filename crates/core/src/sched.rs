//! Server-side GPU scheduling policies for heterogeneous fleets.
//!
//! The `fig_fleet` noisy-neighbour table shows the failure mode Q-VR's
//! collaborative regime predicts: non-adaptive tenants (static collaborative
//! rendering ships full colour+depth frames, remote-only streams
//! everything) saturate the shared server pool under least-loaded placement
//! and drag every *adaptive* session — the tenants whose LIWC could
//! otherwise absorb contention — down with them. Multi-party VR studies
//! consistently find that per-user experience floors under shared
//! infrastructure are the make-or-break property of these systems, so the
//! server needs an isolation lever of its own.
//!
//! A [`ServerPolicy`] is that lever. Every fleet submission carries a
//! [`TenantClass`] derived from its scheme
//! ([`crate::schemes::SchemeKind::tenant_class`]): schemes with a dynamic
//! workload controller (DFR, software Q-VR, full Q-VR) are
//! [`TenantClass::Adaptive`]; fixed-split schemes (remote-only, static
//! collaborative, FFR) are [`TenantClass::BestEffort`]. The policy resolves
//! each class to a per-session placement directive over the GPU pool:
//!
//! * [`ServerPolicy::LeastLoaded`] — the default: every chain takes the
//!   earliest-start unit of the whole pool, exactly the pre-policy engine
//!   (bit-pinned by the `fig_fleet` goldens).
//! * [`ServerPolicy::QuotaPartition`] — a static split: the first
//!   `reserved` units are reserved for adaptive tenants and the rest belong
//!   to best-effort tenants; neither class crosses the boundary, so a
//!   best-effort task is *never* scheduled on a reserved unit (the quota
//!   invariant) and the adaptive slice sees only its own class's queueing.
//! * [`ServerPolicy::AdaptivePriority`] — work-stealing priority: adaptive
//!   tenants keep whole-pool earliest-start selection while best-effort
//!   chains *pack* onto the most-loaded unit, vacating the quiet units for
//!   adaptive work — unless the packed unit's start would exceed the
//!   task's ready time by more than `aging_ms`, in which case the
//!   best-effort task falls back to the earliest-start unit (the bounded
//!   aging guarantee: best-effort work is deprioritised, never starved
//!   beyond the bound relative to the work-conserving choice).
//!
//! * [`ServerPolicy::MeasuredLoad`] — the PR 4 follow-up: a quota-style
//!   split keyed on each tenant's **measured** server ms/frame (the
//!   telemetry [`crate::telemetry::LoadTracker`] EWMA) instead of its
//!   scheme class. Tenants measuring at or under `heavy_ms` place on the
//!   reserved (light) slice, tenants measuring above it on the remainder —
//!   so a best-effort-classed tenant that *behaves* lightly (an FFR user
//!   on a small scene) keeps light placement, and an adaptive tenant that
//!   turns heavy is confined with the heavies. Unmeasured tenants (first
//!   frame) are presumed light; the EWMA reclassifies them within a few
//!   frames, and placement is re-resolved at every chain submission.
//!
//! Policies act on *placement only*: per-unit arbitration stays FIFO in
//! submission order, schedules stay deterministic, and single-tenant
//! (dedicated) rigs ignore the policy entirely — there is nobody to
//! isolate a lone session from.

use crate::telemetry::LoadTracker;
use std::fmt;

/// The server-side scheduling class of a tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TenantClass {
    /// Schemes with a dynamic workload controller (DFR, software Q-VR,
    /// full Q-VR): they re-balance around contention, and server policies
    /// protect them so that feedback loop has headroom to work with.
    Adaptive,
    /// Fixed-split schemes (remote-only, static collaborative, FFR): their
    /// server demand is inelastic, so isolation policies confine or
    /// deprioritise them.
    BestEffort,
}

impl TenantClass {
    /// Display label.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            TenantClass::Adaptive => "adaptive",
            TenantClass::BestEffort => "best-effort",
        }
    }
}

impl fmt::Display for TenantClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// How the shared server pool places tenants' remote chains on GPU units
/// (see the module docs for the three designs).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ServerPolicy {
    /// Earliest-start over the whole pool for every tenant — the
    /// pre-policy engine, bit-pinned by the `fig_fleet` goldens.
    #[default]
    LeastLoaded,
    /// Static split: units `[0, reserved)` serve adaptive tenants only,
    /// units `[reserved, pool)` serve best-effort tenants only.
    QuotaPartition {
        /// GPU units reserved for the adaptive class; must leave at least
        /// one unit for best-effort work (`1 ≤ reserved < pool units`).
        reserved: usize,
    },
    /// Adaptive tenants keep whole-pool earliest-start; best-effort chains
    /// pack onto the most-loaded unit unless that would delay their start
    /// more than `aging_ms` past ready (then they take the earliest-start
    /// unit — the bounded aging guarantee).
    AdaptivePriority {
        /// Longest queueing delay (beyond the task's ready time) a packed
        /// best-effort chain accepts before falling back to the
        /// work-conserving earliest-start unit, ms.
        aging_ms: f64,
    },
    /// Quota-style split keyed on *measured* per-tenant server load (the
    /// telemetry [`LoadTracker`] EWMA) instead of scheme class: tenants at
    /// or under `heavy_ms` of EWMA server time per frame place on units
    /// `[0, reserved)`, heavier tenants on `[reserved, pool)`. Unmeasured
    /// tenants are presumed light until their first frames land.
    MeasuredLoad {
        /// GPU units reserved for measured-light tenants; must leave at
        /// least one unit for the heavy side (`1 ≤ reserved < pool`).
        reserved: usize,
        /// EWMA server ms/frame above which a tenant places heavy.
        heavy_ms: f64,
    },
}

impl ServerPolicy {
    /// Checks the policy against a concrete pool size.
    ///
    /// # Panics
    ///
    /// Panics if a quota partition doesn't leave both classes at least one
    /// unit, or if the aging bound is not finite and non-negative.
    pub fn validate(&self, units: usize) {
        match self {
            ServerPolicy::LeastLoaded => {}
            ServerPolicy::QuotaPartition { reserved } => {
                assert!(
                    *reserved >= 1 && *reserved < units,
                    "QuotaPartition must leave both classes at least one unit: \
                     reserved {reserved} of {units}"
                );
            }
            ServerPolicy::AdaptivePriority { aging_ms } => {
                assert!(
                    aging_ms.is_finite() && *aging_ms >= 0.0,
                    "the aging bound must be finite and non-negative, got {aging_ms}"
                );
            }
            ServerPolicy::MeasuredLoad { reserved, heavy_ms } => {
                assert!(
                    *reserved >= 1 && *reserved < units,
                    "MeasuredLoad must leave both load classes at least one unit: \
                     reserved {reserved} of {units}"
                );
                assert!(
                    heavy_ms.is_finite() && *heavy_ms > 0.0,
                    "the heavy-load threshold must be positive-finite, got {heavy_ms}"
                );
            }
        }
    }

    /// Resolves the policy to one session's placement directive over a
    /// `units`-wide pool. `slot` and `tracker` feed measured-load
    /// placement; class-based policies ignore them.
    #[must_use]
    pub(crate) fn directive(
        &self,
        class: TenantClass,
        units: usize,
        slot: usize,
        tracker: &LoadTracker,
    ) -> UnitDirective {
        if let ServerPolicy::MeasuredLoad { reserved, heavy_ms } = self {
            return UnitDirective::ByLoad {
                reserved: *reserved,
                heavy_ms: *heavy_ms,
                units,
                slot,
                tracker: tracker.clone(),
            };
        }
        match (self, class) {
            (ServerPolicy::LeastLoaded, _)
            | (ServerPolicy::AdaptivePriority { .. }, TenantClass::Adaptive) => {
                UnitDirective::EarliestStart { lo: 0, hi: units }
            }
            // `validate` guarantees 1 ≤ reserved < units; an unvalidated
            // policy fails loudly in the engine's range assert rather than
            // being silently clamped into an overlapping split.
            (ServerPolicy::QuotaPartition { reserved }, TenantClass::Adaptive) => {
                UnitDirective::EarliestStart {
                    lo: 0,
                    hi: *reserved,
                }
            }
            (ServerPolicy::QuotaPartition { reserved }, TenantClass::BestEffort) => {
                UnitDirective::EarliestStart {
                    lo: *reserved,
                    hi: units,
                }
            }
            (ServerPolicy::AdaptivePriority { aging_ms }, TenantClass::BestEffort) => {
                UnitDirective::PackLatest {
                    aging_ms: *aging_ms,
                    units,
                }
            }
            (ServerPolicy::MeasuredLoad { .. }, _) => unreachable!("handled above"),
        }
    }

    /// Display label (short, for sweep tables).
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            ServerPolicy::LeastLoaded => "least-loaded".to_owned(),
            ServerPolicy::QuotaPartition { reserved } => format!("quota(res={reserved})"),
            ServerPolicy::AdaptivePriority { aging_ms } => format!("priority(age={aging_ms:.0}ms)"),
            ServerPolicy::MeasuredLoad { reserved, heavy_ms } => {
                format!("measured(res={reserved},heavy={heavy_ms:.0}ms)")
            }
        }
    }
}

impl fmt::Display for ServerPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// A resolved per-session placement rule, applied by
/// [`crate::schemes::Rig::remote_chain`] at every submission.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum UnitDirective {
    /// Earliest-start selection over units `[lo, hi)` (the exact
    /// `(start, free_at, index)` order of
    /// [`qvr_sim::Engine::least_loaded_unit_in`]).
    EarliestStart {
        /// First eligible unit index.
        lo: usize,
        /// One past the last eligible unit index.
        hi: usize,
    },
    /// Pack onto the most-loaded unit of the whole pool, falling back to
    /// earliest-start once the packed start would exceed ready + bound.
    PackLatest {
        /// The aging bound, ms.
        aging_ms: f64,
        /// Pool width.
        units: usize,
    },
    /// Earliest-start inside the slice the session's *measured* load
    /// currently assigns it: `[0, reserved)` while its EWMA server
    /// ms/frame stays at or under `heavy_ms` (or is unmeasured),
    /// `[reserved, units)` above it. Re-evaluated at every chain
    /// submission against the live [`LoadTracker`].
    ByLoad {
        /// Width of the light slice.
        reserved: usize,
        /// EWMA threshold separating light from heavy, ms/frame.
        heavy_ms: f64,
        /// Pool width.
        units: usize,
        /// The session's tracker slot.
        slot: usize,
        /// The fleet's shared measured-load state.
        tracker: LoadTracker,
    },
}

impl UnitDirective {
    /// The whole-pool earliest-start rule (dedicated rigs, default policy).
    #[must_use]
    pub(crate) fn whole_pool(units: usize) -> Self {
        UnitDirective::EarliestStart { lo: 0, hi: units }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::SchemeKind;

    /// Shorthand: resolve a directive with a throwaway tracker (class-based
    /// policies ignore it).
    fn directive(policy: ServerPolicy, class: TenantClass, units: usize) -> UnitDirective {
        policy.directive(class, units, 0, &LoadTracker::new())
    }

    #[test]
    fn class_derivation_matches_controller_presence() {
        assert!(SchemeKind::Qvr.is_adaptive());
        assert!(SchemeKind::QvrSw.is_adaptive());
        assert!(SchemeKind::Dfr.is_adaptive());
        assert!(!SchemeKind::Ffr.is_adaptive());
        assert!(!SchemeKind::StaticCollab.is_adaptive());
        assert!(!SchemeKind::RemoteOnly.is_adaptive());
        assert!(!SchemeKind::LocalOnly.is_adaptive());
        assert_eq!(SchemeKind::Qvr.tenant_class(), TenantClass::Adaptive);
        assert_eq!(
            SchemeKind::RemoteOnly.tenant_class(),
            TenantClass::BestEffort
        );
    }

    #[test]
    fn least_loaded_maps_everyone_to_the_whole_pool() {
        for class in [TenantClass::Adaptive, TenantClass::BestEffort] {
            assert_eq!(
                directive(ServerPolicy::LeastLoaded, class, 8),
                UnitDirective::whole_pool(8)
            );
        }
    }

    #[test]
    fn quota_partition_splits_the_pool() {
        let p = ServerPolicy::QuotaPartition { reserved: 6 };
        assert_eq!(
            directive(p, TenantClass::Adaptive, 8),
            UnitDirective::EarliestStart { lo: 0, hi: 6 }
        );
        assert_eq!(
            directive(p, TenantClass::BestEffort, 8),
            UnitDirective::EarliestStart { lo: 6, hi: 8 }
        );
    }

    #[test]
    fn adaptive_priority_packs_best_effort_only() {
        let p = ServerPolicy::AdaptivePriority { aging_ms: 50.0 };
        assert_eq!(
            directive(p, TenantClass::Adaptive, 8),
            UnitDirective::whole_pool(8)
        );
        assert_eq!(
            directive(p, TenantClass::BestEffort, 8),
            UnitDirective::PackLatest {
                aging_ms: 50.0,
                units: 8
            }
        );
    }

    #[test]
    fn measured_load_resolves_to_a_tracker_bound_directive_for_every_class() {
        // Measured placement ignores the scheme class entirely: both
        // classes resolve to the same load-keyed directive, bound to the
        // session's slot and the fleet's shared tracker.
        let p = ServerPolicy::MeasuredLoad {
            reserved: 6,
            heavy_ms: 8.0,
        };
        let tracker = LoadTracker::new();
        for class in [TenantClass::Adaptive, TenantClass::BestEffort] {
            let d = p.directive(class, 8, 3, &tracker);
            assert_eq!(
                d,
                UnitDirective::ByLoad {
                    reserved: 6,
                    heavy_ms: 8.0,
                    units: 8,
                    slot: 3,
                    tracker: tracker.clone(),
                }
            );
        }
    }

    #[test]
    fn validation_accepts_sane_policies() {
        ServerPolicy::LeastLoaded.validate(1);
        ServerPolicy::QuotaPartition { reserved: 1 }.validate(2);
        ServerPolicy::QuotaPartition { reserved: 7 }.validate(8);
        ServerPolicy::AdaptivePriority { aging_ms: 0.0 }.validate(1);
        ServerPolicy::MeasuredLoad {
            reserved: 6,
            heavy_ms: 8.0,
        }
        .validate(8);
    }

    #[test]
    #[should_panic(expected = "at least one unit")]
    fn measured_load_must_leave_the_heavy_side_a_unit() {
        ServerPolicy::MeasuredLoad {
            reserved: 8,
            heavy_ms: 8.0,
        }
        .validate(8);
    }

    #[test]
    #[should_panic(expected = "heavy-load threshold")]
    fn measured_load_rejects_a_non_positive_threshold() {
        ServerPolicy::MeasuredLoad {
            reserved: 4,
            heavy_ms: 0.0,
        }
        .validate(8);
    }

    #[test]
    #[should_panic(expected = "at least one unit")]
    fn quota_must_leave_best_effort_a_unit() {
        ServerPolicy::QuotaPartition { reserved: 8 }.validate(8);
    }

    #[test]
    #[should_panic(expected = "at least one unit")]
    fn quota_must_reserve_at_least_one_unit() {
        ServerPolicy::QuotaPartition { reserved: 0 }.validate(8);
    }

    #[test]
    #[should_panic(expected = "aging bound")]
    fn negative_aging_rejected() {
        ServerPolicy::AdaptivePriority { aging_ms: -1.0 }.validate(8);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(ServerPolicy::default(), ServerPolicy::LeastLoaded);
        assert_eq!(ServerPolicy::LeastLoaded.to_string(), "least-loaded");
        assert_eq!(
            ServerPolicy::QuotaPartition { reserved: 6 }.to_string(),
            "quota(res=6)"
        );
        assert_eq!(
            ServerPolicy::AdaptivePriority { aging_ms: 50.0 }.to_string(),
            "priority(age=50ms)"
        );
        assert_eq!(
            ServerPolicy::MeasuredLoad {
                reserved: 6,
                heavy_ms: 8.0
            }
            .to_string(),
            "measured(res=6,heavy=8ms)"
        );
        assert_eq!(TenantClass::Adaptive.to_string(), "adaptive");
        assert_eq!(TenantClass::BestEffort.to_string(), "best-effort");
    }
}
