//! Offline stand-in for the subset of the `bytes` crate API this workspace
//! uses: `Bytes` (cheaply cloneable immutable view with a read cursor),
//! `BytesMut` (growable buffer), and the `Buf`/`BufMut` traits' `get_u8` /
//! `put_u8` / `remaining` methods.
//!
//! The build environment has no registry access, so the real `bytes` cannot
//! be fetched; this crate keeps the call sites source-compatible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;
use std::sync::Arc;

/// Read-side buffer operations.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Reads one byte and advances the cursor.
    ///
    /// # Panics
    ///
    /// Panics if no bytes remain.
    fn get_u8(&mut self) -> u8;
}

/// Write-side buffer operations.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
}

/// A cheaply cloneable immutable byte buffer with a read cursor.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(Vec::new()),
            start: 0,
            end: 0,
        }
    }

    /// Copies a slice into a new buffer.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data.to_vec()),
            start: 0,
            end: data.len(),
        }
    }

    /// Unread length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether no unread bytes remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-view of the unread bytes (indices relative to the current view).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    #[must_use]
    pub fn slice(&self, range: Range<usize>) -> Self {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice out of bounds"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// The unread bytes as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        assert!(self.start < self.end, "get_u8 past end of buffer");
        let b = self.data[self.start];
        self.start += 1;
        b
    }
}

/// A growable write buffer convertible into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with reserved capacity.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Written length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        let end = self.data.len();
        Bytes {
            data: Arc::from(self.data),
            start: 0,
            end,
        }
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut w = BytesMut::with_capacity(4);
        for v in [1u8, 2, 3] {
            w.put_u8(v);
        }
        let mut r = w.freeze();
        assert_eq!(r.len(), 3);
        assert_eq!(r.remaining(), 3);
        assert_eq!(r.get_u8(), 1);
        assert_eq!(r.remaining(), 2);
        assert_eq!(r.get_u8(), 2);
        assert_eq!(r.get_u8(), 3);
        assert!(r.is_empty());
    }

    #[test]
    fn clone_keeps_cursor_independent() {
        let mut w = BytesMut::new();
        w.put_u8(9);
        w.put_u8(8);
        let a = w.freeze();
        let mut b = a.clone();
        assert_eq!(b.get_u8(), 9);
        assert_eq!(a.len(), 2, "clone advances independently");
        assert_eq!(a, Bytes::copy_from_slice(&[9, 8]));
    }

    #[test]
    fn slice_is_relative_to_view() {
        let src = Bytes::copy_from_slice(&[0, 1, 2, 3, 4, 5]);
        let half = src.slice(0..3);
        assert_eq!(half.as_slice(), &[0, 1, 2]);
        let mut inner = half.slice(1..3);
        assert_eq!(inner.get_u8(), 1);
        assert_eq!(inner.get_u8(), 2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_slice_rejected() {
        let src = Bytes::copy_from_slice(&[1, 2]);
        let _ = src.slice(0..3);
    }

    #[test]
    #[should_panic(expected = "past end")]
    fn overread_rejected() {
        let mut b = Bytes::new();
        let _ = b.get_u8();
    }
}
