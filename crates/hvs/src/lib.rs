//! Human-visual-system models for foveated collaborative rendering.
//!
//! This crate provides the vision-science substrate of the Q-VR
//! reproduction (Xie et al., ASPLOS 2021, Section 3):
//!
//! * [`angles`] — angular display geometry: fields of view, eccentricity,
//!   pixels-per-degree conversions for a head-mounted display.
//! * [`mar`] — the *minimum angle of resolution* (MAR) acuity model
//!   `ω(e) = m·e + ω₀` used by foveated renderers to decide how coarsely a
//!   region at eccentricity `e` may be sampled without perceptible loss.
//! * [`layers`] — the fovea / middle / outer layer partition, including the
//!   paper's Eq. (1): the re-partition into a *local fovea* layer and a
//!   *remote periphery* (middle + outer) with the periphery-pixel-minimising
//!   second eccentricity `*e₂`.
//! * [`perception`] — a synthetic stand-in for the paper's 50-participant
//!   image-quality survey: a configuration is imperceptibly degraded exactly
//!   when every displayed layer satisfies the MAR bound at its eccentricity.
//!
//! # Example
//!
//! ```
//! use qvr_hvs::{DisplayGeometry, MarModel, LayerPartition};
//!
//! let display = DisplayGeometry::per_eye(1920, 2160, 110.0, 110.0);
//! let mar = MarModel::default();
//! // Partition a frame with a 15-degree local fovea.
//! let part = LayerPartition::with_optimal_middle(15.0, &display, &mar).unwrap();
//! assert!(part.middle_eccentricity() >= part.fovea_eccentricity());
//! // The periphery is subsampled, so it needs fewer pixels than the display.
//! assert!(part.periphery_pixels(&display, &mar) < display.pixels_per_eye() as f64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod angles;
pub mod error;
pub mod layers;
pub mod mar;
pub mod perception;

pub use angles::{Degrees, DisplayGeometry, GazePoint};
pub use error::HvsError;
pub use layers::{LayerBudget, LayerKind, LayerPartition};
pub use mar::MarModel;
pub use perception::{PerceptionModel, PerceptionScore, SurveyOutcome};
