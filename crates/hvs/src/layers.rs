//! Fovea / middle / outer layer partition (paper Sec. 3, Eq. (1)).
//!
//! Traditional foveated rendering splits the frame into three nested layers.
//! Q-VR re-groups them into a **local** part (the fovea disc of radius `e1`,
//! rendered on the mobile GPU at native resolution) and a **remote** part
//! (middle + outer, rendered on the server at MAR-constrained reduced
//! resolutions and streamed back). Eq. (1) picks the middle eccentricity
//! `*e₂` that minimises the total periphery pixel volume
//! `P_middle + P_outer`, which directly minimises transmitted data.

use crate::angles::{DisplayGeometry, GazePoint};
use crate::error::HvsError;
use crate::mar::MarModel;
use std::fmt;

/// Which visual layer a screen location belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// Innermost layer: native resolution, rendered locally in Q-VR.
    Fovea,
    /// Annulus between `e1` and `e2`: gradient resolution, rendered remotely.
    Middle,
    /// Beyond `e2`: lowest resolution, rendered remotely.
    Outer,
}

impl fmt::Display for LayerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            LayerKind::Fovea => "fovea",
            LayerKind::Middle => "middle",
            LayerKind::Outer => "outer",
        };
        f.write_str(name)
    }
}

/// Pixel volume that each layer contributes to a frame.
///
/// All quantities are fractional pixel counts for **one eye**; multiply by
/// two for a stereo pair.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LayerBudget {
    /// Native-resolution pixels in the local fovea layer.
    pub fovea_px: f64,
    /// Subsampled pixels rendered for the middle layer.
    pub middle_px: f64,
    /// Subsampled pixels rendered for the outer layer.
    pub outer_px: f64,
}

impl LayerBudget {
    /// Pixels rendered remotely (middle + outer).
    #[must_use]
    pub fn periphery(&self) -> f64 {
        self.middle_px + self.outer_px
    }

    /// Total pixels rendered across all layers.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.fovea_px + self.periphery()
    }
}

/// A two-eccentricity foveation partition `(e1, e2)` in visual degrees.
///
/// Invariant: `0 < e1 <= e2 <= MAX_ECCENTRICITY`.
///
/// # Example
///
/// ```
/// use qvr_hvs::{DisplayGeometry, MarModel, LayerPartition};
///
/// let display = DisplayGeometry::vive_pro_class();
/// let mar = MarModel::default();
/// let p = LayerPartition::new(15.0, 40.0)?;
/// let budget = p.layer_budget(&display, &mar, Default::default());
/// assert!(budget.fovea_px > 0.0 && budget.periphery() > 0.0);
/// # Ok::<(), qvr_hvs::HvsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerPartition {
    e1: f64,
    e2: f64,
}

impl LayerPartition {
    /// The smallest fovea the controller may select, in degrees.
    ///
    /// Five degrees is the classic anatomical fovea (and the paper's FFR
    /// baseline as well as Q-VR's initial value).
    pub const MIN_E1: f64 = 5.0;
    /// The largest eccentricity the controller may select, in degrees.
    ///
    /// Table 4 saturates at 90° ("render everything locally").
    pub const MAX_E1: f64 = 90.0;

    /// Creates a partition from explicit eccentricities.
    ///
    /// # Errors
    ///
    /// Returns [`HvsError::InvalidEccentricity`] if either value is outside
    /// `(0, 90]` or non-finite, and [`HvsError::InvertedPartition`] if
    /// `e1 > e2`.
    pub fn new(e1: f64, e2: f64) -> Result<Self, HvsError> {
        for e in [e1, e2] {
            if !e.is_finite() || e <= 0.0 || e > Self::MAX_E1 {
                return Err(HvsError::InvalidEccentricity {
                    value: e,
                    max: Self::MAX_E1,
                });
            }
        }
        if e1 > e2 {
            return Err(HvsError::InvertedPartition { e1, e2 });
        }
        Ok(LayerPartition { e1, e2 })
    }

    /// Creates a partition with the Eq. (1) optimal middle eccentricity:
    /// `*e₂ = argmin (P_middle + P_outer)`.
    ///
    /// # Errors
    ///
    /// Returns [`HvsError::InvalidEccentricity`] if `e1` is outside `(0, 90]`.
    pub fn with_optimal_middle(
        e1: f64,
        display: &DisplayGeometry,
        mar: &MarModel,
    ) -> Result<Self, HvsError> {
        if !e1.is_finite() || e1 <= 0.0 || e1 > Self::MAX_E1 {
            return Err(HvsError::InvalidEccentricity {
                value: e1,
                max: Self::MAX_E1,
            });
        }
        let e2 = optimal_middle_eccentricity(e1, display, mar);
        LayerPartition::new(e1, e2)
    }

    /// The fovea (first) eccentricity `e1` in degrees.
    #[must_use]
    pub fn fovea_eccentricity(&self) -> f64 {
        self.e1
    }

    /// The middle (second) eccentricity `e2` in degrees.
    #[must_use]
    pub fn middle_eccentricity(&self) -> f64 {
        self.e2
    }

    /// Returns a copy with a different fovea eccentricity, re-optimising the
    /// middle eccentricity, clamping `e1` into `[MIN_E1, MAX_E1]`.
    #[must_use]
    pub fn retargeted(&self, e1: f64, display: &DisplayGeometry, mar: &MarModel) -> Self {
        let e1 = e1.clamp(Self::MIN_E1, Self::MAX_E1);
        LayerPartition::with_optimal_middle(e1, display, mar)
            .expect("clamped eccentricity is always valid")
    }

    /// The layer containing eccentricity `e` degrees.
    #[must_use]
    pub fn layer_at(&self, e_deg: f64) -> LayerKind {
        if e_deg <= self.e1 {
            LayerKind::Fovea
        } else if e_deg <= self.e2 {
            LayerKind::Middle
        } else {
            LayerKind::Outer
        }
    }

    /// Linear resolution scale (≤ 1) of a layer under the MAR model.
    ///
    /// The fovea is always native (1.0); the middle layer is sampled for its
    /// most demanding (innermost) eccentricity `e1`; the outer for `e2`.
    #[must_use]
    pub fn layer_scale(&self, layer: LayerKind, display: &DisplayGeometry, mar: &MarModel) -> f64 {
        let native = display.native_mar();
        match layer {
            LayerKind::Fovea => 1.0,
            LayerKind::Middle => mar.resolution_scale(self.e1, native),
            LayerKind::Outer => mar.resolution_scale(self.e2, native),
        }
    }

    /// Pixel volume of every layer for one eye.
    ///
    /// Layer extents follow Guenter et al.: each layer is rendered as an
    /// axis-aligned rectangle circumscribing its eccentricity disc (clipped
    /// to the panel), at its layer scale; the outer layer always covers the
    /// full panel.
    #[must_use]
    pub fn layer_budget(
        &self,
        display: &DisplayGeometry,
        mar: &MarModel,
        gaze: GazePoint,
    ) -> LayerBudget {
        let total_px = display.pixels_per_eye() as f64;
        let fovea_px = display.fovea_pixels(self.e1, gaze);

        let mid_extent = rect_fraction(self.e2, display, gaze);
        let mid_scale = self.layer_scale(LayerKind::Middle, display, mar);
        // The middle rectangle excludes the fovea disc it encloses: those
        // pixels come from the local layer.
        let mid_area_px = (mid_extent * total_px - fovea_px).max(0.0);
        let middle_px = mid_area_px * mid_scale * mid_scale;

        let out_scale = self.layer_scale(LayerKind::Outer, display, mar);
        // The outer layer covers the full panel; the composition overlaps it
        // with the middle rectangle, so only the remainder is unique, but the
        // server still renders (and transmits) the full coarse plane, which
        // is what matters for workload and network volume.
        let outer_px = total_px * out_scale * out_scale;

        LayerBudget {
            fovea_px,
            middle_px,
            outer_px,
        }
    }

    /// Remote (middle + outer) pixel volume for one eye; the paper's
    /// `P_middle + P_outer` objective.
    #[must_use]
    pub fn periphery_pixels(&self, display: &DisplayGeometry, mar: &MarModel) -> f64 {
        self.layer_budget(display, mar, GazePoint::center())
            .periphery()
    }

    /// Fraction by which the total rendered pixel volume is reduced relative
    /// to rendering the full panel at native resolution (Fig. 13's
    /// "resolution reduction").
    #[must_use]
    pub fn resolution_reduction(
        &self,
        display: &DisplayGeometry,
        mar: &MarModel,
        gaze: GazePoint,
    ) -> f64 {
        let budget = self.layer_budget(display, mar, gaze);
        let native = display.pixels_per_eye() as f64;
        (1.0 - budget.total() / native).clamp(0.0, 1.0)
    }
}

impl fmt::Display for LayerPartition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e1={:.1}°, e2={:.1}°", self.e1, self.e2)
    }
}

/// Fraction of the panel covered by the axis-aligned rectangle that
/// circumscribes the eccentricity disc of radius `e` at `gaze`.
fn rect_fraction(e_deg: f64, display: &DisplayGeometry, gaze: GazePoint) -> f64 {
    let (w, h) = (display.fov_h().0, display.fov_v().0);
    let cx = gaze.x * w / 2.0;
    let cy = gaze.y * h / 2.0;
    let left = (cx - e_deg).max(-w / 2.0);
    let right = (cx + e_deg).min(w / 2.0);
    let bottom = (cy - e_deg).max(-h / 2.0);
    let top = (cy + e_deg).min(h / 2.0);
    if left >= right || bottom >= top {
        return 0.0;
    }
    ((right - left) * (top - bottom) / (w * h)).clamp(0.0, 1.0)
}

/// Grid search for the Eq. (1) optimal `*e₂`: the middle eccentricity that
/// minimises total periphery pixel volume.
///
/// The candidate cost is the [`LayerPartition::periphery_pixels`] objective
/// with its e2-invariant terms (fovea disc area, middle-layer scale, native
/// MAR) hoisted out of the loop: each candidate evaluates the same
/// expression tree as `layer_budget` would, operation for operation, so the
/// selected `e2` is bit-identical to scanning full budgets — while the
/// expensive disc integration runs once instead of once per candidate.
fn optimal_middle_eccentricity(e1: f64, display: &DisplayGeometry, mar: &MarModel) -> f64 {
    let e_max = display.max_eccentricity().0.min(LayerPartition::MAX_E1);
    if e1 >= e_max {
        return LayerPartition::MAX_E1.min(e1.max(LayerPartition::MIN_E1));
    }
    const STEP: f64 = 0.25;
    let gaze = GazePoint::center();
    let total_px = display.pixels_per_eye() as f64;
    let fovea_px = display.fovea_pixels(e1, gaze);
    let native = display.native_mar();
    let mid_scale = mar.resolution_scale(e1, native);
    let mut best_e2 = e1;
    let mut best_cost = f64::INFINITY;
    let mut consider = |e2: f64| {
        // `layer_budget(center).periphery()`, term by term.
        let mid_extent = rect_fraction(e2, display, gaze);
        let mid_area_px = (mid_extent * total_px - fovea_px).max(0.0);
        let middle_px = mid_area_px * mid_scale * mid_scale;
        let out_scale = mar.resolution_scale(e2, native);
        let outer_px = total_px * out_scale * out_scale;
        let cost = middle_px + outer_px;
        if cost < best_cost {
            best_cost = cost;
            best_e2 = e2;
        }
    };
    let mut e2 = e1;
    while e2 <= e_max + 1e-9 {
        consider(e2);
        e2 += STEP;
    }
    // The grid may stop short of the boundary; evaluate it exactly.
    consider(e_max);
    best_e2
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (DisplayGeometry, MarModel) {
        (DisplayGeometry::vive_pro_class(), MarModel::default())
    }

    #[test]
    fn new_validates_ordering() {
        assert!(LayerPartition::new(30.0, 10.0).is_err());
        assert!(LayerPartition::new(10.0, 30.0).is_ok());
        assert!(LayerPartition::new(10.0, 10.0).is_ok());
    }

    #[test]
    fn new_validates_range() {
        assert!(LayerPartition::new(0.0, 10.0).is_err());
        assert!(LayerPartition::new(-5.0, 10.0).is_err());
        assert!(LayerPartition::new(5.0, 95.0).is_err());
        assert!(LayerPartition::new(f64::NAN, 10.0).is_err());
    }

    #[test]
    fn layer_at_boundaries() {
        let p = LayerPartition::new(10.0, 30.0).unwrap();
        assert_eq!(p.layer_at(0.0), LayerKind::Fovea);
        assert_eq!(p.layer_at(10.0), LayerKind::Fovea);
        assert_eq!(p.layer_at(10.1), LayerKind::Middle);
        assert_eq!(p.layer_at(30.0), LayerKind::Middle);
        assert_eq!(p.layer_at(30.1), LayerKind::Outer);
    }

    #[test]
    fn fovea_scale_is_native() {
        let (d, m) = setup();
        let p = LayerPartition::new(10.0, 30.0).unwrap();
        assert_eq!(p.layer_scale(LayerKind::Fovea, &d, &m), 1.0);
    }

    #[test]
    fn scales_decrease_outward() {
        let (d, m) = setup();
        let p = LayerPartition::new(10.0, 30.0).unwrap();
        let sf = p.layer_scale(LayerKind::Fovea, &d, &m);
        let sm = p.layer_scale(LayerKind::Middle, &d, &m);
        let so = p.layer_scale(LayerKind::Outer, &d, &m);
        assert!(sf >= sm && sm >= so, "{sf} {sm} {so}");
        assert!(so > 0.0);
    }

    #[test]
    fn budget_components_positive_for_interior_partition() {
        let (d, m) = setup();
        let p = LayerPartition::new(15.0, 40.0).unwrap();
        let b = p.layer_budget(&d, &m, GazePoint::center());
        assert!(b.fovea_px > 0.0);
        assert!(b.middle_px > 0.0);
        assert!(b.outer_px > 0.0);
        assert!((b.total() - (b.fovea_px + b.middle_px + b.outer_px)).abs() < 1e-9);
    }

    #[test]
    fn periphery_shrinks_as_fovea_grows_with_optimal_middle() {
        let (d, m) = setup();
        let small = LayerPartition::with_optimal_middle(10.0, &d, &m).unwrap();
        let large = LayerPartition::with_optimal_middle(40.0, &d, &m).unwrap();
        assert!(
            large.periphery_pixels(&d, &m) < small.periphery_pixels(&d, &m),
            "bigger local fovea must shrink remote volume"
        );
    }

    #[test]
    fn optimal_middle_is_at_least_e1() {
        let (d, m) = setup();
        for e1 in [5.0, 10.0, 20.0, 30.0, 50.0, 70.0, 89.0] {
            let p = LayerPartition::with_optimal_middle(e1, &d, &m).unwrap();
            assert!(p.middle_eccentricity() >= p.fovea_eccentricity() - 1e-9);
        }
    }

    #[test]
    fn optimal_middle_beats_naive_choices() {
        let (d, m) = setup();
        let e1 = 15.0;
        let opt = LayerPartition::with_optimal_middle(e1, &d, &m).unwrap();
        let opt_cost = opt.periphery_pixels(&d, &m);
        for e2 in [e1, 25.0, 45.0, 60.0, 77.0] {
            let p = LayerPartition::new(e1, e2).unwrap();
            assert!(
                opt_cost <= p.periphery_pixels(&d, &m) + 1e-6,
                "optimal e2 must minimise periphery pixels (e2={e2})"
            );
        }
    }

    #[test]
    fn hoisted_grid_search_matches_full_budget_scan_exactly() {
        // The production grid search hoists e2-invariant terms; this naive
        // scan evaluates the full `periphery_pixels` objective per
        // candidate. Both must pick the same e2 with the same cost bits.
        let (d, m) = setup();
        for e1 in [5.0, 7.25, 15.0, 22.5, 40.0, 61.0, 77.0] {
            let e_max = d.max_eccentricity().0.min(LayerPartition::MAX_E1);
            let mut best_e2 = e1;
            let mut best_cost = f64::INFINITY;
            let mut consider = |e2: f64| {
                let cost = LayerPartition { e1, e2 }.periphery_pixels(&d, &m);
                if cost < best_cost {
                    best_cost = cost;
                    best_e2 = e2;
                }
            };
            let mut e2 = e1;
            while e2 <= e_max + 1e-9 {
                consider(e2);
                e2 += 0.25;
            }
            consider(e_max);
            let got = optimal_middle_eccentricity(e1, &d, &m);
            assert_eq!(got.to_bits(), best_e2.to_bits(), "e1={e1}");
        }
    }

    #[test]
    fn resolution_reduction_in_unit_range() {
        let (d, m) = setup();
        for e1 in [5.0, 20.0, 45.0, 88.0] {
            let p = LayerPartition::with_optimal_middle(e1, &d, &m).unwrap();
            let r = p.resolution_reduction(&d, &m, GazePoint::center());
            assert!((0.0..=1.0).contains(&r), "reduction {r} for e1={e1}");
        }
    }

    #[test]
    fn small_fovea_gives_large_resolution_reduction() {
        let (d, m) = setup();
        let p = LayerPartition::with_optimal_middle(5.0, &d, &m).unwrap();
        // Almost all of the frame is MAR-subsampled periphery.
        assert!(p.resolution_reduction(&d, &m, GazePoint::center()) > 0.5);
    }

    #[test]
    fn retargeted_clamps() {
        let (d, m) = setup();
        let p = LayerPartition::new(10.0, 30.0).unwrap();
        assert_eq!(
            p.retargeted(2.0, &d, &m).fovea_eccentricity(),
            LayerPartition::MIN_E1
        );
        assert_eq!(
            p.retargeted(300.0, &d, &m).fovea_eccentricity(),
            LayerPartition::MAX_E1
        );
    }

    #[test]
    fn layer_kind_display() {
        assert_eq!(LayerKind::Fovea.to_string(), "fovea");
        assert_eq!(LayerKind::Middle.to_string(), "middle");
        assert_eq!(LayerKind::Outer.to_string(), "outer");
    }

    #[test]
    fn partition_display_contains_both_eccentricities() {
        let p = LayerPartition::new(12.5, 33.0).unwrap();
        let s = p.to_string();
        assert!(s.contains("12.5") && s.contains("33.0"));
    }
}
