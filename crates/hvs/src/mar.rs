//! The minimum-angle-of-resolution (MAR) acuity model.
//!
//! Human visual acuity falls off linearly with eccentricity to a good
//! approximation (Guenter et al. 2012; Weymouth 1958): the smallest angular
//! detail resolvable at eccentricity `e` degrees is
//!
//! ```text
//! ω(e) = m·e + ω₀      [degrees per cycle]
//! ```
//!
//! where `ω₀` is the foveal MAR (about one arc-minute) and `m` the acuity
//! slope. Q-VR inherits its `m` and `ω₀` "directly ... from the previous
//! user studies" (Sec. 3.1); we default to the conservative slope from
//! Guenter et al.'s user study.

use crate::error::HvsError;
use std::fmt;

/// Linear MAR acuity model `ω(e) = m·e + ω₀`.
///
/// # Example
///
/// ```
/// use qvr_hvs::MarModel;
///
/// let mar = MarModel::default();
/// // Acuity requirement relaxes with eccentricity.
/// assert!(mar.mar_at(30.0) > mar.mar_at(5.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarModel {
    slope: f64,
    omega0: f64,
}

impl MarModel {
    /// Conservative slope from Guenter et al. 2012's user study
    /// (the value that produced no perceptible artifacts for all subjects).
    pub const GUENTER_CONSERVATIVE_SLOPE: f64 = 0.022;
    /// Aggressive slope from the same study (artifact-free for most).
    pub const GUENTER_AGGRESSIVE_SLOPE: f64 = 0.034;
    /// Foveal MAR of a healthy adult: one arc-minute, in degrees.
    pub const FOVEAL_MAR_DEG: f64 = 1.0 / 60.0;

    /// Creates a MAR model from an acuity slope and foveal MAR (degrees).
    ///
    /// # Errors
    ///
    /// Returns [`HvsError::InvalidMarParameter`] if `slope` is negative or
    /// non-finite, or `omega0` is non-positive or non-finite.
    pub fn new(slope: f64, omega0: f64) -> Result<Self, HvsError> {
        if !slope.is_finite() || slope < 0.0 {
            return Err(HvsError::InvalidMarParameter {
                name: "slope",
                value: slope,
            });
        }
        if !omega0.is_finite() || omega0 <= 0.0 {
            return Err(HvsError::InvalidMarParameter {
                name: "omega0",
                value: omega0,
            });
        }
        Ok(MarModel { slope, omega0 })
    }

    /// The acuity slope `m` in degrees of MAR per degree of eccentricity.
    #[must_use]
    pub fn slope(&self) -> f64 {
        self.slope
    }

    /// The foveal MAR `ω₀` in degrees.
    #[must_use]
    pub fn omega0(&self) -> f64 {
        self.omega0
    }

    /// MAR at eccentricity `e` degrees: `ω(e) = m·e + ω₀`.
    ///
    /// Negative eccentricities are treated by their absolute value (the
    /// model is radially symmetric).
    #[must_use]
    pub fn mar_at(&self, e_deg: f64) -> f64 {
        self.slope * e_deg.abs() + self.omega0
    }

    /// The eccentricity at which the MAR first reaches `omega` degrees, or
    /// zero if the foveal MAR already exceeds it.
    #[must_use]
    pub fn eccentricity_for_mar(&self, omega: f64) -> f64 {
        if omega <= self.omega0 || self.slope == 0.0 {
            0.0
        } else {
            (omega - self.omega0) / self.slope
        }
    }

    /// The maximum tolerable *linear* subsampling factor at eccentricity `e`
    /// for a display whose native angular resolution is `native_mar` degrees
    /// per pixel.
    ///
    /// A factor of `1.0` means native resolution is required; a factor of
    /// `4.0` means one rendered pixel may cover 4×4 native pixels without a
    /// perceptible difference.
    #[must_use]
    pub fn subsample_factor(&self, e_deg: f64, native_mar: f64) -> f64 {
        (self.mar_at(e_deg) / native_mar).max(1.0)
    }

    /// The *linear* resolution scale (≤ 1) tolerable at eccentricity `e`
    /// relative to a display with native MAR `native_mar`.
    ///
    /// This is the paper's `*sᵢ = ωᵢ / ω*` from Eq. (1), inverted so that
    /// smaller values mean coarser layers: `scale = ω* / ω(e)`, clamped to 1.
    #[must_use]
    pub fn resolution_scale(&self, e_deg: f64, native_mar: f64) -> f64 {
        1.0 / self.subsample_factor(e_deg, native_mar)
    }

    /// Whether a layer sampled with linear scale `scale` (≤ 1) satisfies the
    /// MAR constraint at eccentricity `e` for the given display.
    ///
    /// The requirement is display-relative: a panel can never deliver finer
    /// than its native angular resolution, so near the fovea (where the eye
    /// out-resolves the panel) native-scale rendering counts as satisfied.
    #[must_use]
    pub fn satisfies(&self, e_deg: f64, scale: f64, native_mar: f64) -> bool {
        // The layer's effective angular resolution is native_mar / scale.
        // Guard scale = 0 (infinitely coarse) as unsatisfiable.
        if scale <= 0.0 {
            return false;
        }
        let required = self.mar_at(e_deg).max(native_mar);
        native_mar / scale <= required * (1.0 + 1e-9)
    }
}

impl Default for MarModel {
    /// The conservative Guenter et al. parameters used by Q-VR.
    fn default() -> Self {
        MarModel {
            slope: Self::GUENTER_CONSERVATIVE_SLOPE,
            omega0: Self::FOVEAL_MAR_DEG,
        }
    }
}

impl fmt::Display for MarModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ω(e) = {:.4}·e + {:.4}", self.slope, self.omega0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_parameters_match_constants() {
        let m = MarModel::default();
        assert_eq!(m.slope(), MarModel::GUENTER_CONSERVATIVE_SLOPE);
        assert_eq!(m.omega0(), MarModel::FOVEAL_MAR_DEG);
    }

    #[test]
    fn mar_is_linear() {
        let m = MarModel::default();
        let at0 = m.mar_at(0.0);
        let at10 = m.mar_at(10.0);
        let at20 = m.mar_at(20.0);
        assert!((at20 - at10 - (at10 - at0)).abs() < 1e-12);
    }

    #[test]
    fn mar_radially_symmetric() {
        let m = MarModel::default();
        assert_eq!(m.mar_at(-15.0), m.mar_at(15.0));
    }

    #[test]
    fn inverse_round_trips() {
        let m = MarModel::default();
        for e in [0.5, 5.0, 20.0, 60.0] {
            let omega = m.mar_at(e);
            assert!((m.eccentricity_for_mar(omega) - e).abs() < 1e-9);
        }
    }

    #[test]
    fn eccentricity_for_small_mar_is_zero() {
        let m = MarModel::default();
        assert_eq!(m.eccentricity_for_mar(m.omega0() / 2.0), 0.0);
    }

    #[test]
    fn subsample_factor_clamps_at_fovea() {
        let m = MarModel::default();
        // A display coarser than the eye: native MAR larger than omega0.
        let native = 0.06; // ~16.7 ppd, a VR-class panel
        assert_eq!(m.subsample_factor(0.0, native), 1.0);
        assert!(m.subsample_factor(40.0, native) > 1.0);
    }

    #[test]
    fn resolution_scale_monotonically_decreases() {
        let m = MarModel::default();
        let native = 0.06;
        let mut last = f64::INFINITY;
        for e in 0..90 {
            let s = m.resolution_scale(f64::from(e), native);
            assert!(s <= last + 1e-12);
            assert!(s > 0.0 && s <= 1.0);
            last = s;
        }
    }

    #[test]
    fn satisfies_exactly_at_boundary() {
        let m = MarModel::default();
        let native = 0.06;
        let e = 30.0;
        let s = m.resolution_scale(e, native);
        assert!(m.satisfies(e, s, native));
        assert!(!m.satisfies(e, s * 0.8, native));
        assert!(m.satisfies(e, (s * 1.2).min(1.0), native));
    }

    #[test]
    fn zero_scale_never_satisfies() {
        let m = MarModel::default();
        assert!(!m.satisfies(80.0, 0.0, 0.06));
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(MarModel::new(-0.01, 0.01).is_err());
        assert!(MarModel::new(0.02, 0.0).is_err());
        assert!(MarModel::new(f64::INFINITY, 0.01).is_err());
        assert!(MarModel::new(0.02, f64::NAN).is_err());
    }

    #[test]
    fn display_shows_equation() {
        let s = MarModel::default().to_string();
        assert!(s.contains("ω(e)"));
    }
}
