//! Error type for vision-model construction and queries.

use std::error::Error;
use std::fmt;

/// Errors produced by the vision models in this crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum HvsError {
    /// An eccentricity was negative, non-finite, or beyond the visual field.
    InvalidEccentricity {
        /// The offending value, in degrees.
        value: f64,
        /// The largest eccentricity accepted by the callee, in degrees.
        max: f64,
    },
    /// A layer partition was requested with `e1 > e2`.
    InvertedPartition {
        /// Fovea eccentricity `e1` in degrees.
        e1: f64,
        /// Middle eccentricity `e2` in degrees.
        e2: f64,
    },
    /// A MAR model parameter was out of its physical range.
    InvalidMarParameter {
        /// Name of the offending parameter (`"slope"` or `"omega0"`).
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A display geometry dimension was zero or non-finite.
    InvalidDisplay {
        /// Human-readable description of the invalid field.
        what: &'static str,
    },
}

impl fmt::Display for HvsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HvsError::InvalidEccentricity { value, max } => {
                write!(f, "eccentricity {value} degrees outside [0, {max}]")
            }
            HvsError::InvertedPartition { e1, e2 } => {
                write!(
                    f,
                    "fovea eccentricity {e1} exceeds middle eccentricity {e2}"
                )
            }
            HvsError::InvalidMarParameter { name, value } => {
                write!(f, "non-physical value {value} for MAR parameter {name}")
            }
            HvsError::InvalidDisplay { what } => {
                write!(f, "invalid display geometry: {what}")
            }
        }
    }
}

impl Error for HvsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_nonempty_and_lowercase() {
        let errs = [
            HvsError::InvalidEccentricity {
                value: -1.0,
                max: 90.0,
            },
            HvsError::InvertedPartition { e1: 30.0, e2: 10.0 },
            HvsError::InvalidMarParameter {
                name: "slope",
                value: -0.5,
            },
            HvsError::InvalidDisplay { what: "zero width" },
        ];
        for e in errs {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<HvsError>();
    }
}
