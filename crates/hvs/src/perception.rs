//! Synthetic stand-in for the paper's image-quality user survey (Sec. 3.1).
//!
//! The paper ran a 50-candidate survey and found that participants observe
//! *no* visible quality difference between eccentricity selections as long
//! as the target MAR is satisfied for every displayed layer. This module
//! encodes that finding as a checkable model:
//!
//! * [`PerceptionModel::score`] returns a deterministic quality score that
//!   is perfect exactly when the MAR bound holds everywhere, and degrades
//!   with the worst acuity shortfall otherwise.
//! * [`PerceptionModel::run_survey`] simulates a panel of candidates with
//!   seeded inter-subject variability, reproducing the survey protocol
//!   (5-second exposures, per-image opinion scores).

use crate::angles::DisplayGeometry;
use crate::layers::{LayerKind, LayerPartition};
use crate::mar::MarModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// A frame-quality score in `[0, 1]`; `1.0` means perceptually lossless.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct PerceptionScore(f64);

impl PerceptionScore {
    /// The raw score value in `[0, 1]`.
    #[must_use]
    pub fn value(&self) -> f64 {
        self.0
    }

    /// Whether the configuration is perceptually lossless.
    #[must_use]
    pub fn is_lossless(&self) -> bool {
        self.0 >= 1.0 - 1e-9
    }

    /// Mean-opinion-score mapping onto the usual 1–5 scale.
    #[must_use]
    pub fn as_mos(&self) -> f64 {
        1.0 + 4.0 * self.0
    }
}

impl fmt::Display for PerceptionScore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.0)
    }
}

/// Aggregate outcome of a simulated user survey.
#[derive(Debug, Clone, PartialEq)]
pub struct SurveyOutcome {
    /// Number of simulated candidates.
    pub candidates: usize,
    /// Fraction of candidates who reported a visible difference.
    pub fraction_noticing: f64,
    /// Mean opinion score across candidates (1–5).
    pub mean_opinion_score: f64,
}

impl fmt::Display for SurveyOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} noticed, MOS {:.2}",
            (self.fraction_noticing * self.candidates as f64).round() as usize,
            self.candidates,
            self.mean_opinion_score
        )
    }
}

/// Perception model combining a display and a MAR acuity model.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PerceptionModel {
    display: DisplayGeometry,
    mar: MarModel,
}

impl PerceptionModel {
    /// Number of eccentricity samples used when scanning a partition.
    const SAMPLES: usize = 128;

    /// Creates a model for a display and acuity model.
    #[must_use]
    pub fn new(display: DisplayGeometry, mar: MarModel) -> Self {
        PerceptionModel { display, mar }
    }

    /// The display geometry under evaluation.
    #[must_use]
    pub fn display(&self) -> &DisplayGeometry {
        &self.display
    }

    /// The acuity model in use.
    #[must_use]
    pub fn mar(&self) -> &MarModel {
        &self.mar
    }

    /// Deterministic quality score for a layer partition.
    ///
    /// Scans eccentricities from the gaze centre to the panel corner; at
    /// each, the displayed layer's resolution scale must satisfy the MAR
    /// bound. The score is `1.0` when satisfied everywhere; otherwise it
    /// falls with the mean relative acuity shortfall.
    #[must_use]
    pub fn score(&self, partition: &LayerPartition) -> PerceptionScore {
        let native = self.display.native_mar();
        let e_max = self.display.max_eccentricity().0;
        let mut shortfall_sum = 0.0;
        for i in 0..Self::SAMPLES {
            let e = e_max * (i as f64 + 0.5) / Self::SAMPLES as f64;
            let layer = partition.layer_at(e);
            let scale = partition.layer_scale(layer, &self.display, &self.mar);
            // Effective angular resolution delivered at this eccentricity.
            let delivered = native / scale.max(1e-9);
            // Lossless means "as good as non-foveated rendering on the same
            // panel": the requirement can never be finer than native.
            let required = self.mar.mar_at(e).max(native);
            if delivered > required {
                shortfall_sum += (delivered / required - 1.0).min(1.0);
            }
        }
        let mean_shortfall = shortfall_sum / Self::SAMPLES as f64;
        PerceptionScore((1.0 - mean_shortfall).clamp(0.0, 1.0))
    }

    /// Scores an explicit uniform down-scaling of the periphery below the
    /// MAR bound, as used in quality-degradation sweeps.
    ///
    /// `undersample` multiplies the MAR-derived layer scales; `1.0`
    /// reproduces [`PerceptionModel::score`], values below `1.0` render the
    /// periphery coarser than the acuity bound allows.
    #[must_use]
    pub fn score_undersampled(
        &self,
        partition: &LayerPartition,
        undersample: f64,
    ) -> PerceptionScore {
        let native = self.display.native_mar();
        let e_max = self.display.max_eccentricity().0;
        let mut shortfall_sum = 0.0;
        for i in 0..Self::SAMPLES {
            let e = e_max * (i as f64 + 0.5) / Self::SAMPLES as f64;
            let layer = partition.layer_at(e);
            let mut scale = partition.layer_scale(layer, &self.display, &self.mar);
            if layer != LayerKind::Fovea {
                scale *= undersample.clamp(0.0, 1.0);
            }
            let delivered = native / scale.max(1e-9);
            let required = self.mar.mar_at(e).max(native);
            if delivered > required {
                shortfall_sum += (delivered / required - 1.0).min(1.0);
            }
        }
        let mean_shortfall = shortfall_sum / Self::SAMPLES as f64;
        PerceptionScore((1.0 - mean_shortfall).clamp(0.0, 1.0))
    }

    /// Simulates the paper's survey protocol for one partition.
    ///
    /// Each of `candidates` simulated subjects views the foveated frame and
    /// reports (a) whether they noticed degradation and (b) an opinion score.
    /// Subjects have individual acuity offsets drawn from a seeded RNG, so a
    /// configuration exactly at the MAR bound is noticed by (almost) nobody,
    /// matching the paper's finding.
    #[must_use]
    pub fn run_survey(
        &self,
        partition: &LayerPartition,
        candidates: usize,
        seed: u64,
    ) -> SurveyOutcome {
        let base = self.score(partition);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut noticed = 0usize;
        let mut mos_sum = 0.0;
        for _ in 0..candidates {
            // Inter-subject acuity variability: ±10 % on the perceived
            // shortfall, plus a small response noise on the opinion score.
            let sensitivity: f64 = rng.gen_range(0.9..1.1);
            let perceived_loss = (1.0 - base.value()) * sensitivity;
            if perceived_loss > 0.02 {
                noticed += 1;
            }
            let mos = (5.0 - 4.0 * perceived_loss + rng.gen_range(-0.1..0.1)).clamp(1.0, 5.0);
            mos_sum += mos;
        }
        SurveyOutcome {
            candidates,
            fraction_noticing: if candidates == 0 {
                0.0
            } else {
                noticed as f64 / candidates as f64
            },
            mean_opinion_score: if candidates == 0 {
                0.0
            } else {
                mos_sum / candidates as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> PerceptionModel {
        PerceptionModel::new(DisplayGeometry::vive_pro_class(), MarModel::default())
    }

    #[test]
    fn mar_constrained_partition_is_lossless() {
        let m = model();
        for e1 in [5.0, 15.0, 30.0, 60.0] {
            let p = LayerPartition::with_optimal_middle(e1, m.display(), m.mar()).unwrap();
            let s = m.score(&p);
            assert!(s.is_lossless(), "e1={e1} score={s}");
        }
    }

    #[test]
    fn undersampling_degrades_score() {
        let m = model();
        let p = LayerPartition::with_optimal_middle(10.0, m.display(), m.mar()).unwrap();
        let full = m.score_undersampled(&p, 1.0);
        let half = m.score_undersampled(&p, 0.5);
        let tenth = m.score_undersampled(&p, 0.1);
        assert!(full.is_lossless());
        assert!(half.value() < full.value());
        assert!(tenth.value() < half.value());
    }

    #[test]
    fn score_matches_undersampled_at_unity() {
        let m = model();
        let p = LayerPartition::with_optimal_middle(20.0, m.display(), m.mar()).unwrap();
        assert!((m.score(&p).value() - m.score_undersampled(&p, 1.0).value()).abs() < 1e-12);
    }

    #[test]
    fn survey_on_lossless_config_finds_no_difference() {
        let m = model();
        let p = LayerPartition::with_optimal_middle(15.0, m.display(), m.mar()).unwrap();
        let outcome = m.run_survey(&p, 50, 42);
        assert_eq!(outcome.candidates, 50);
        assert_eq!(outcome.fraction_noticing, 0.0);
        assert!(outcome.mean_opinion_score > 4.8);
    }

    #[test]
    fn survey_on_degraded_config_is_noticed() {
        let m = model();
        // Force heavy undersampling by scoring a partition and manually
        // degrading: emulate via score_undersampled's path through a custom
        // survey — here we rely on score() of a partition whose outer layer
        // violates MAR. Construct by using a huge slope model on a modest
        // display... simpler: degrade with the undersampled scorer and check
        // the deterministic part.
        let p = LayerPartition::with_optimal_middle(10.0, m.display(), m.mar()).unwrap();
        let degraded = m.score_undersampled(&p, 0.25);
        assert!(degraded.value() < 0.95);
    }

    #[test]
    fn survey_is_deterministic_per_seed() {
        let m = model();
        let p = LayerPartition::with_optimal_middle(15.0, m.display(), m.mar()).unwrap();
        let a = m.run_survey(&p, 50, 7);
        let b = m.run_survey(&p, 50, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_survey_is_well_defined() {
        let m = model();
        let p = LayerPartition::with_optimal_middle(15.0, m.display(), m.mar()).unwrap();
        let outcome = m.run_survey(&p, 0, 0);
        assert_eq!(outcome.fraction_noticing, 0.0);
        assert_eq!(outcome.mean_opinion_score, 0.0);
    }

    #[test]
    fn mos_mapping() {
        assert_eq!(PerceptionScore(1.0).as_mos(), 5.0);
        assert_eq!(PerceptionScore(0.0).as_mos(), 1.0);
    }

    #[test]
    fn outcome_display_is_informative() {
        let o = SurveyOutcome {
            candidates: 50,
            fraction_noticing: 0.1,
            mean_opinion_score: 4.5,
        };
        let s = o.to_string();
        assert!(s.contains("5/50"));
        assert!(s.contains("4.5"));
    }
}
