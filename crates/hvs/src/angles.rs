//! Angular display geometry for a head-mounted display.
//!
//! VR acuity models work in *visual degrees*; rendering works in *pixels*.
//! [`DisplayGeometry`] converts between the two for one eye of an HMD and
//! answers the geometric questions the rest of the system asks: how many
//! pixels fall inside an eccentricity disc, what fraction of the field of
//! view a fovea of a given radius covers, and where a gaze point sits on the
//! panel.

use crate::error::HvsError;
use std::fmt;

/// An angle in visual degrees.
///
/// A thin newtype so that angular quantities are not confused with pixel
/// counts or ratios in the many `f64`-heavy APIs of this workspace.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Degrees(pub f64);

impl Degrees {
    /// The angle in radians.
    #[must_use]
    pub fn to_radians(self) -> f64 {
        self.0.to_radians()
    }

    /// Absolute value.
    #[must_use]
    pub fn abs(self) -> Degrees {
        Degrees(self.0.abs())
    }
}

impl fmt::Display for Degrees {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}°", self.0)
    }
}

impl From<f64> for Degrees {
    fn from(v: f64) -> Self {
        Degrees(v)
    }
}

impl From<Degrees> for f64 {
    fn from(d: Degrees) -> Self {
        d.0
    }
}

/// A gaze point on the panel, in normalized device coordinates.
///
/// `(0.0, 0.0)` is the panel centre; `x` and `y` range over `[-1, 1]` at the
/// panel edges. The eye tracker reports gaze in this space.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GazePoint {
    /// Horizontal position, `-1` (left edge) to `1` (right edge).
    pub x: f64,
    /// Vertical position, `-1` (bottom edge) to `1` (top edge).
    pub y: f64,
}

impl GazePoint {
    /// A gaze point at the panel centre.
    #[must_use]
    pub fn center() -> Self {
        GazePoint::default()
    }

    /// Creates a gaze point, clamping both coordinates into `[-1, 1]`.
    #[must_use]
    pub fn clamped(x: f64, y: f64) -> Self {
        GazePoint {
            x: x.clamp(-1.0, 1.0),
            y: y.clamp(-1.0, 1.0),
        }
    }

    /// Euclidean distance to another gaze point in NDC units.
    #[must_use]
    pub fn distance(&self, other: &GazePoint) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// Per-eye display geometry of a head-mounted display.
///
/// Q-VR's evaluation uses 1920×2160 per eye (HTC-Vive-Pro-class panels) with
/// roughly a 110° field of view; see `DisplayGeometry::vive_pro_class`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DisplayGeometry {
    width_px: u32,
    height_px: u32,
    fov_h: Degrees,
    fov_v: Degrees,
}

impl DisplayGeometry {
    /// Creates a per-eye geometry from pixel dimensions and fields of view.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or any field of view is non-positive
    /// or non-finite. Use [`DisplayGeometry::try_per_eye`] for a fallible
    /// constructor.
    #[must_use]
    pub fn per_eye(width_px: u32, height_px: u32, fov_h_deg: f64, fov_v_deg: f64) -> Self {
        Self::try_per_eye(width_px, height_px, fov_h_deg, fov_v_deg)
            .expect("invalid display geometry")
    }

    /// Fallible counterpart of [`DisplayGeometry::per_eye`].
    ///
    /// # Errors
    ///
    /// Returns [`HvsError::InvalidDisplay`] if a pixel dimension is zero or a
    /// field of view is non-positive, non-finite, or larger than 180°.
    pub fn try_per_eye(
        width_px: u32,
        height_px: u32,
        fov_h_deg: f64,
        fov_v_deg: f64,
    ) -> Result<Self, HvsError> {
        if width_px == 0 || height_px == 0 {
            return Err(HvsError::InvalidDisplay {
                what: "zero pixel dimension",
            });
        }
        for fov in [fov_h_deg, fov_v_deg] {
            if !fov.is_finite() || fov <= 0.0 || fov > 180.0 {
                return Err(HvsError::InvalidDisplay {
                    what: "field of view outside (0, 180]",
                });
            }
        }
        Ok(DisplayGeometry {
            width_px,
            height_px,
            fov_h: Degrees(fov_h_deg),
            fov_v: Degrees(fov_v_deg),
        })
    }

    /// The 1920×2160 @ 110°×110° per-eye geometry used throughout the paper.
    #[must_use]
    pub fn vive_pro_class() -> Self {
        DisplayGeometry::per_eye(1920, 2160, 110.0, 110.0)
    }

    /// The low-resolution 1280×1600 variant used by Doom3-L and HL2-L.
    #[must_use]
    pub fn low_res_class() -> Self {
        DisplayGeometry::per_eye(1280, 1600, 110.0, 110.0)
    }

    /// Panel width in pixels (one eye).
    #[must_use]
    pub fn width_px(&self) -> u32 {
        self.width_px
    }

    /// Panel height in pixels (one eye).
    #[must_use]
    pub fn height_px(&self) -> u32 {
        self.height_px
    }

    /// Horizontal field of view.
    #[must_use]
    pub fn fov_h(&self) -> Degrees {
        self.fov_h
    }

    /// Vertical field of view.
    #[must_use]
    pub fn fov_v(&self) -> Degrees {
        self.fov_v
    }

    /// Total pixels on one eye's panel.
    #[must_use]
    pub fn pixels_per_eye(&self) -> u64 {
        u64::from(self.width_px) * u64::from(self.height_px)
    }

    /// Mean pixels per visual degree (horizontal).
    #[must_use]
    pub fn ppd_h(&self) -> f64 {
        f64::from(self.width_px) / self.fov_h.0
    }

    /// Mean pixels per visual degree (vertical).
    #[must_use]
    pub fn ppd_v(&self) -> f64 {
        f64::from(self.height_px) / self.fov_v.0
    }

    /// The display's native angular resolution ω\* in degrees per pixel.
    ///
    /// This is the `ω*` of the paper's Eq. (1): the finest angular detail the
    /// panel can show. Uses the geometric mean of the two axes.
    #[must_use]
    pub fn native_mar(&self) -> f64 {
        (1.0 / self.ppd_h() * (1.0 / self.ppd_v())).sqrt()
    }

    /// Largest on-screen eccentricity in degrees (panel corner from centre).
    #[must_use]
    pub fn max_eccentricity(&self) -> Degrees {
        let half_diag = ((self.fov_h.0 / 2.0).powi(2) + (self.fov_v.0 / 2.0).powi(2)).sqrt();
        Degrees(half_diag)
    }

    /// The fraction of the panel area covered by an eccentricity disc of
    /// radius `e` degrees centred at `gaze`.
    ///
    /// The disc is intersected with the panel rectangle using a fine
    /// analytic approximation (axis-wise clipping of the circle), which is
    /// exact for a centred gaze and within ~2 % for off-centre gazes — enough
    /// fidelity for workload estimation.
    ///
    /// Returns a value in `[0, 1]`.
    #[must_use]
    pub fn fovea_area_fraction(&self, e_deg: f64, gaze: GazePoint) -> f64 {
        if e_deg <= 0.0 {
            return 0.0;
        }
        // Work in degrees: panel is fov_h x fov_v, gaze centre offset from the
        // panel centre by (gx, gy) degrees.
        let (w, h) = (self.fov_h.0, self.fov_v.0);
        let gx = gaze.x * w / 2.0;
        let gy = gaze.y * h / 2.0;
        let area = clipped_circle_area(e_deg, gx, gy, w, h);
        (area / (w * h)).clamp(0.0, 1.0)
    }

    /// Number of panel pixels inside the eccentricity disc of radius `e`
    /// centred at `gaze`.
    #[must_use]
    pub fn fovea_pixels(&self, e_deg: f64, gaze: GazePoint) -> f64 {
        self.fovea_area_fraction(e_deg, gaze) * self.pixels_per_eye() as f64
    }

    /// Radius in degrees beyond which an eccentricity disc centred at
    /// `gaze` certainly covers the whole panel (the distance from the gaze
    /// point to the farthest panel corner): for any `e` at or above it,
    /// [`DisplayGeometry::fovea_area_fraction`] is a saturated constant.
    /// Integration loops use this to stop early.
    #[must_use]
    pub fn saturation_radius_deg(&self, gaze: GazePoint) -> f64 {
        let (w, h) = (self.fov_h.0, self.fov_v.0);
        let gx = gaze.x * w / 2.0;
        let gy = gaze.y * h / 2.0;
        let dx = (w / 2.0 - gx).max(gx + w / 2.0);
        let dy = (h / 2.0 - gy).max(gy + h / 2.0);
        (dx * dx + dy * dy).sqrt()
    }

    /// Eccentricity of a pixel at NDC position `(x, y)` for a gaze point.
    #[must_use]
    pub fn eccentricity_of(&self, x: f64, y: f64, gaze: GazePoint) -> Degrees {
        let dx = (x - gaze.x) * self.fov_h.0 / 2.0;
        let dy = (y - gaze.y) * self.fov_v.0 / 2.0;
        Degrees((dx * dx + dy * dy).sqrt())
    }
}

impl Default for DisplayGeometry {
    fn default() -> Self {
        DisplayGeometry::vive_pro_class()
    }
}

impl fmt::Display for DisplayGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{} px, {}x{} FOV",
            self.width_px, self.height_px, self.fov_h, self.fov_v
        )
    }
}

/// Area of the intersection of a circle (radius `r`, centre `(cx, cy)` with
/// the panel centre at the origin) with the rectangle `[-w/2, w/2] x [-h/2,
/// h/2]`, computed by numerical strip integration.
///
/// A 256-strip trapezoid pass keeps the error well under 0.1 % for the sizes
/// used here while staying allocation-free.
fn clipped_circle_area(r: f64, cx: f64, cy: f64, w: f64, h: f64) -> f64 {
    const STRIPS: usize = 256;
    let (x_lo, x_hi) = (-w / 2.0, w / 2.0);
    let (y_lo, y_hi) = (-h / 2.0, h / 2.0);
    let left = (cx - r).max(x_lo);
    let right = (cx + r).min(x_hi);
    if left >= right {
        return 0.0;
    }
    let dx = (right - left) / STRIPS as f64;
    let mut area = 0.0;
    for i in 0..STRIPS {
        let x = left + (i as f64 + 0.5) * dx;
        let half_chord_sq = r * r - (x - cx) * (x - cx);
        if half_chord_sq <= 0.0 {
            continue;
        }
        let half_chord = half_chord_sq.sqrt();
        let top = (cy + half_chord).min(y_hi);
        let bottom = (cy - half_chord).max(y_lo);
        if top > bottom {
            area += (top - bottom) * dx;
        }
    }
    area
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-6;

    #[test]
    fn ppd_matches_hand_computation() {
        let d = DisplayGeometry::vive_pro_class();
        assert!((d.ppd_h() - 1920.0 / 110.0).abs() < EPS);
        assert!((d.ppd_v() - 2160.0 / 110.0).abs() < EPS);
    }

    #[test]
    fn native_mar_is_geometric_mean() {
        let d = DisplayGeometry::vive_pro_class();
        let expected = ((110.0 / 1920.0) * (110.0_f64 / 2160.0)).sqrt();
        assert!((d.native_mar() - expected).abs() < EPS);
    }

    #[test]
    fn zero_dimension_rejected() {
        assert!(matches!(
            DisplayGeometry::try_per_eye(0, 100, 110.0, 110.0),
            Err(HvsError::InvalidDisplay { .. })
        ));
        assert!(matches!(
            DisplayGeometry::try_per_eye(100, 100, -1.0, 110.0),
            Err(HvsError::InvalidDisplay { .. })
        ));
        assert!(matches!(
            DisplayGeometry::try_per_eye(100, 100, 110.0, f64::NAN),
            Err(HvsError::InvalidDisplay { .. })
        ));
    }

    #[test]
    fn centred_small_fovea_area_is_circular() {
        let d = DisplayGeometry::vive_pro_class();
        // A 10-degree disc fits fully on a 110x110 panel, so the fraction is
        // pi * r^2 / (w * h).
        let frac = d.fovea_area_fraction(10.0, GazePoint::center());
        let expected = std::f64::consts::PI * 100.0 / (110.0 * 110.0);
        assert!((frac - expected).abs() < 1e-3, "{frac} vs {expected}");
    }

    #[test]
    fn huge_fovea_covers_whole_panel() {
        let d = DisplayGeometry::vive_pro_class();
        let frac = d.fovea_area_fraction(200.0, GazePoint::center());
        assert!((frac - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fovea_area_monotonic_in_radius() {
        let d = DisplayGeometry::vive_pro_class();
        let mut last = 0.0;
        for e in 1..90 {
            let frac = d.fovea_area_fraction(f64::from(e), GazePoint::center());
            assert!(frac >= last, "area fraction must not decrease");
            last = frac;
        }
    }

    #[test]
    fn off_centre_gaze_reduces_visible_disc() {
        let d = DisplayGeometry::vive_pro_class();
        let centred = d.fovea_area_fraction(30.0, GazePoint::center());
        let cornered = d.fovea_area_fraction(30.0, GazePoint::clamped(0.9, 0.9));
        assert!(cornered < centred);
        assert!(cornered > 0.0);
    }

    #[test]
    fn eccentricity_of_gaze_point_is_zero() {
        let d = DisplayGeometry::vive_pro_class();
        let g = GazePoint::clamped(0.3, -0.2);
        assert!(d.eccentricity_of(0.3, -0.2, g).0.abs() < EPS);
    }

    #[test]
    fn eccentricity_of_corner_matches_max() {
        let d = DisplayGeometry::vive_pro_class();
        let e = d.eccentricity_of(1.0, 1.0, GazePoint::center());
        assert!((e.0 - d.max_eccentricity().0).abs() < EPS);
    }

    #[test]
    fn gaze_clamping() {
        let g = GazePoint::clamped(3.0, -7.0);
        assert_eq!(g, GazePoint { x: 1.0, y: -1.0 });
    }

    #[test]
    fn gaze_distance_symmetric() {
        let a = GazePoint::clamped(0.1, 0.2);
        let b = GazePoint::clamped(-0.4, 0.9);
        assert!((a.distance(&b) - b.distance(&a)).abs() < EPS);
    }

    #[test]
    fn display_formats_human_readably() {
        let d = DisplayGeometry::vive_pro_class();
        let s = d.to_string();
        assert!(s.contains("1920x2160"));
        assert!(s.contains("110"));
    }
}
