//! Property-based tests for the vision models.

use proptest::prelude::*;
use qvr_hvs::{DisplayGeometry, GazePoint, LayerKind, LayerPartition, MarModel, PerceptionModel};

fn display_strategy() -> impl Strategy<Value = DisplayGeometry> {
    (640u32..4096, 640u32..4096, 60.0f64..160.0, 60.0f64..160.0)
        .prop_map(|(w, h, fh, fv)| DisplayGeometry::per_eye(w, h, fh, fv))
}

fn mar_strategy() -> impl Strategy<Value = MarModel> {
    (0.005f64..0.08, 0.005f64..0.05).prop_map(|(m, w0)| MarModel::new(m, w0).unwrap())
}

proptest! {
    #[test]
    fn mar_monotonic_in_eccentricity(mar in mar_strategy(), a in 0.0f64..90.0, b in 0.0f64..90.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(mar.mar_at(lo) <= mar.mar_at(hi) + 1e-12);
    }

    #[test]
    fn resolution_scale_bounded(mar in mar_strategy(), d in display_strategy(), e in 0.0f64..90.0) {
        let s = mar.resolution_scale(e, d.native_mar());
        prop_assert!(s > 0.0 && s <= 1.0);
    }

    #[test]
    fn mar_derived_scale_always_satisfies(mar in mar_strategy(), d in display_strategy(), e in 0.0f64..90.0) {
        let s = mar.resolution_scale(e, d.native_mar());
        prop_assert!(mar.satisfies(e, s, d.native_mar()));
    }

    #[test]
    fn fovea_area_fraction_in_unit_interval(
        d in display_strategy(),
        e in 0.0f64..200.0,
        gx in -1.0f64..1.0,
        gy in -1.0f64..1.0,
    ) {
        let f = d.fovea_area_fraction(e, GazePoint::clamped(gx, gy));
        prop_assert!((0.0..=1.0).contains(&f));
    }

    #[test]
    fn fovea_area_monotone_in_radius(
        d in display_strategy(),
        e in 1.0f64..80.0,
        delta in 0.1f64..20.0,
        gx in -1.0f64..1.0,
        gy in -1.0f64..1.0,
    ) {
        let g = GazePoint::clamped(gx, gy);
        prop_assert!(d.fovea_area_fraction(e + delta, g) + 1e-9 >= d.fovea_area_fraction(e, g));
    }

    #[test]
    fn partition_layers_are_ordered(e1 in 1.0f64..89.0, span in 0.0f64..40.0) {
        let e2 = (e1 + span).min(90.0);
        let p = LayerPartition::new(e1, e2).unwrap();
        // Walking outward never moves to an inner layer.
        let rank = |k: LayerKind| match k {
            LayerKind::Fovea => 0,
            LayerKind::Middle => 1,
            LayerKind::Outer => 2,
        };
        let mut last = 0;
        for i in 0..=90 {
            let r = rank(p.layer_at(f64::from(i)));
            prop_assert!(r >= last);
            last = r;
        }
    }

    #[test]
    fn optimal_partition_is_minimal(
        d in display_strategy(),
        mar in mar_strategy(),
        e1 in 5.0f64..60.0,
        probe in 0.0f64..1.0,
    ) {
        let opt = LayerPartition::with_optimal_middle(e1, &d, &mar).unwrap();
        let e_max = d.max_eccentricity().0.min(90.0);
        let e2_probe = e1 + probe * (e_max - e1).max(0.0);
        if e2_probe >= e1 && e2_probe <= 90.0 {
            if let Ok(alt) = LayerPartition::new(e1, e2_probe) {
                prop_assert!(
                    opt.periphery_pixels(&d, &mar) <= alt.periphery_pixels(&d, &mar) + 1.0,
                    "optimal middle must not lose to probe"
                );
            }
        }
    }

    #[test]
    fn perception_never_flags_mar_constrained(
        d in display_strategy(),
        mar in mar_strategy(),
        e1 in 5.0f64..89.0,
    ) {
        let model = PerceptionModel::new(d, mar);
        let p = LayerPartition::with_optimal_middle(e1, &d, &mar).unwrap();
        prop_assert!(model.score(&p).is_lossless());
    }

    #[test]
    fn budget_total_never_exceeds_native_by_much(
        d in display_strategy(),
        mar in mar_strategy(),
        e1 in 5.0f64..89.0,
    ) {
        // Rendered pixels may slightly exceed native (layer overlap) but must
        // stay within a small constant factor.
        let p = LayerPartition::with_optimal_middle(e1, &d, &mar).unwrap();
        let b = p.layer_budget(&d, &mar, GazePoint::center());
        prop_assert!(b.total() <= 1.3 * d.pixels_per_eye() as f64);
    }
}
