//! Per-layer residual statistics and an entropy-coded frame-size model.
//!
//! The fleet hot path cannot run the real [`crate::TransformCodec`] per
//! frame per tenant — encoding a single 64×64 probe frame costs more than
//! stepping an entire fleet round. Instead, this module models what the
//! coder *would* emit: per-zigzag-index Laplacian-style coefficient
//! statistics ([`BlockStats`]) synthesized from scene content detail,
//! frame-to-frame motion, the layer's VRS shading scale, and its retinal
//! eccentricity, feeding an [`EntropyModel`] that predicts entropy-coded
//! bytes as a function of the quantiser step.
//!
//! The model mirrors the real coder's cost structure exactly — one marker
//! and one end byte per block, and per nonzero coefficient a run byte plus
//! LEB128-style VLC bytes — so the only modelled quantity is the
//! probability that a coefficient at zigzag index `i` survives quantiser
//! step Δᵢ. For a Laplacian with scale `bᵢ` that is `exp(−Δᵢ/2bᵢ)`; real
//! block populations are mixtures (flat interiors vs edges), which a
//! stretched exponential `exp(−(θΔᵢ/2bᵢ)^ρ)` captures. The coefficient
//! tables and the shape constants `θ`, `ρ` are calibrated against the real
//! [`crate::TransformCodec`] on synthetic game frames; the property test
//! `entropy_model_tracks_real_codec` pins the estimate within ~15% of the
//! actual encoded size across a detail × quality grid.

use crate::transform::QUANT_BASE;

/// Mean |DCT coefficient| per zigzag index for the luma plane of
/// zero-detail game content (flat regions + checker edges + gradient),
/// measured over 8×8 blocks of the calibration corpus.
const LUMA_BASE: [f64; 64] = [
    3.747805904597044,
    0.4487786666722968,
    0.42609060399638604,
    0.15811869819179564,
    0.35360224661417305,
    0.15811871234887354,
    0.15199481505260337,
    0.13121881004190072,
    0.13121877535013482,
    0.1496230980964735,
    0.0,
    0.124168605892919,
    0.0486941832350567,
    0.12416860013036057,
    0.0,
    0.10068274756486062,
    0.0,
    0.04607791005400941,
    0.04607791895978153,
    0.0,
    0.09997523381349405,
    0.06549489924951515,
    0.08296683104708791,
    0.0,
    0.04360221448587254,
    0.0,
    0.08296680459170602,
    0.06549489206646744,
    0.0849332290304119,
    0.05435261124512181,
    0.030788283416768536,
    0.0,
    0.0,
    0.030788292351644486,
    0.05435264788684435,
    0.08475467388121083,
    0.07033585238968953,
    0.020169804483884946,
    0.0291340789408423,
    0.0,
    0.02913407183950767,
    0.020169793424429372,
    0.07033583117299713,
    0.02610103324695956,
    0.019086099782725796,
    0.0,
    0.0,
    0.01908610522514209,
    0.02610104480118025,
    0.02469866107276175,
    0.0,
    0.019466765894321725,
    0.0,
    0.024698657522094436,
    0.0,
    0.012752929498674348,
    0.012752930910210125,
    0.0,
    0.016503120968991425,
    0.008354608828085475,
    0.01650312201672932,
    0.01081140669703018,
    0.010811408435984049,
    0.013990662122523645,
];

/// Added mean |DCT coefficient| per unit content detail (luma), from the
/// same calibration corpus (texture noise scales linearly with detail).
const LUMA_SLOPE: [f64; 64] = [
    0.0,
    0.016833401356507238,
    0.05009770771255223,
    0.039365379672123446,
    0.03524076080066152,
    0.030759530905420385,
    0.026293251848983346,
    0.0340969302051235,
    0.04012106475420296,
    0.022752930262011695,
    0.055862764035370806,
    0.03571683992049657,
    0.03753891246742569,
    0.023264269009814598,
    0.0415341805096905,
    0.012955011905432912,
    0.05107399882399477,
    0.034511609526816756,
    0.022984798066318035,
    0.05103408626746386,
    0.03869174403047415,
    0.03324006348840655,
    0.03159518536995165,
    0.05505365788121708,
    0.035204281855840236,
    0.04250115415197797,
    0.030501695320708677,
    0.038651356678187726,
    0.02358417469122287,
    0.030075811635470018,
    0.045861410500947386,
    0.040039356317720376,
    0.049724573371349834,
    0.03584185952786356,
    0.03750405352911912,
    0.02408751246479901,
    0.019922725317883305,
    0.045459552929969504,
    0.03098607478023041,
    0.054519159835763276,
    0.03628369692887645,
    0.0347326375922421,
    0.03752825222181855,
    0.03615684680698905,
    0.038004511647159234,
    0.043596883668215014,
    0.054605233046459034,
    0.03853193006943911,
    0.03405047336127609,
    0.026713272516644793,
    0.04117264927481301,
    0.03983306094596628,
    0.05058062600437552,
    0.039076380264305044,
    0.049745518117561005,
    0.03801595505501609,
    0.04372805994353257,
    0.04781481362442719,
    0.030231110853492282,
    0.040000021319428924,
    0.0375568684830796,
    0.04279394763580058,
    0.038113445618364494,
    0.04310597455332754,
];

/// Mean |DCT coefficient| per zigzag index for the subsampled chroma
/// planes. Chroma carries the palette contrast, not the texture noise, so
/// it is detail-independent in the calibration corpus.
const CHROMA_BASE: [f64; 64] = [
    0.09181377173808869,
    0.032003332534377565,
    0.032003332835575715,
    0.026135700699041222,
    0.09947564781759866,
    0.026135700724514647,
    0.007933575073958844,
    0.08123733835964231,
    0.0812373365406529,
    0.007933574511216596,
    0.010296126287467691,
    0.024659843285917304,
    0.06634292179660406,
    0.024659842616529204,
    0.010296126190095796,
    0.013556412350659689,
    0.03200334258872317,
    0.02013859732687706,
    0.020138597996265162,
    0.03200334042776376,
    0.013556408508157912,
    0.0033961329708960385,
    0.04213724633882521,
    0.02613570413814159,
    0.006113133531471249,
    0.026135706444620155,
    0.042137242780881934,
    0.0033961349067573405,
    0.01015345809781613,
    0.010556162924331147,
    0.0344116136948287,
    0.007933575492643286,
    0.00793357407746953,
    0.03441161349473987,
    0.010556162626016885,
    0.01015345430755599,
    0.03155988018261269,
    0.008620751461421605,
    0.010445751784573076,
    0.01029612782804179,
    0.010445750325743575,
    0.008620749995316146,
    0.03155988347134553,
    0.02577355283392535,
    0.0026168543990934268,
    0.013556408823205857,
    0.013556410485762171,
    0.002616854697407689,
    0.02577355185894703,
    0.007823640098649776,
    0.0033961338849621825,
    0.01784906672219222,
    0.0033961342105612857,
    0.007823640771675855,
    0.01015345722407801,
    0.004471521826417302,
    0.0044715240655932575,
    0.010153456400075811,
    0.01336856296256883,
    0.0011202006307939882,
    0.013368562846153509,
    0.003349073045683326,
    0.003349073791923729,
    0.010012763668783009,
];

/// Fitted tail-shape constants of the stretched-exponential survival
/// probability `p_nz = exp(−(θ·Δ/2b)^ρ)` (calibrated against the real
/// coder on the detail × quality grid).
const THETA: f64 = 1.85;
/// See [`THETA`].
const RHO: f64 = 0.65;

/// Effective detail gain: the texture-noise slope understates how much
/// coded size grows with detail (edge sharpening under quantisation), so
/// the calibrated model scales the per-unit-detail slope up by this much.
const DETAIL_GAIN: f64 = 2.7;

/// Amplitude boost exponent for downscaled (VRS-shaded) content: box
/// filtering to linear scale `s` concentrates the surviving energy into
/// fewer blocks, raising per-block amplitudes by `s^−β` (this is what
/// makes bytes scale *sub-quadratically* with resolution, the γ < 2 of
/// the closed-form [`crate::SizeModel`]).
const SCALE_BOOST_EXP: f64 = 0.55;

/// Eccentricity at which high-frequency content is attenuated by `1/e` at
/// the top of the zigzag scan (peripheral layers are rendered coarse and
/// blurred, so their residual spectra decay faster).
const ECC_REF_DEG: f64 = 60.0;

/// Fraction of intra-frame statistics that remains in the residual when
/// the stream is fully motion-compensated (motion = 0): static content
/// still refreshes disocclusions and shading.
const MOTION_FLOOR: f64 = 0.3;

/// Per-layer Laplacian-style coefficient statistics: one scale per zigzag
/// index for luma and for the (subsampled) chroma planes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockStats {
    /// Laplacian scale per zigzag index, luma plane.
    pub luma: [f64; 64],
    /// Laplacian scale per zigzag index, chroma planes.
    pub chroma: [f64; 64],
}

impl BlockStats {
    /// Statistics for one streamed layer.
    ///
    /// * `detail` — scene content detail in `[0, 1]` (clamped).
    /// * `motion` — normalised frame-to-frame motion magnitude; `0` is a
    ///   static scene (residuals shrink toward [`MOTION_FLOOR`]), `1` a
    ///   brisk head turn (intra-like statistics). Values above 1 clamp.
    /// * `linear_scale` — VRS linear shading scale in `(0, 1]`; coarser
    ///   shading concentrates energy, boosting amplitudes by `s^−β`.
    /// * `eccentricity_deg` — the layer's retinal eccentricity; far
    ///   periphery is blurred, so its high-frequency tail decays faster.
    #[must_use]
    pub fn layer(detail: f64, motion: f64, linear_scale: f64, eccentricity_deg: f64) -> Self {
        let detail = detail.clamp(0.0, 1.0);
        let motion_factor = MOTION_FLOOR + (1.0 - MOTION_FLOOR) * motion.clamp(0.0, 1.0);
        let boost = linear_scale.clamp(0.05, 1.0).powf(-SCALE_BOOST_EXP);
        let ecc = eccentricity_deg.max(0.0) / ECC_REF_DEG;
        let mut luma = [0.0f64; 64];
        let mut chroma = [0.0f64; 64];
        for zi in 0..64 {
            let attenuation = (-(zi as f64 / 63.0) * ecc).exp();
            let factor = motion_factor * boost * attenuation;
            luma[zi] = (LUMA_BASE[zi] + DETAIL_GAIN * detail * LUMA_SLOPE[zi]) * factor;
            chroma[zi] = CHROMA_BASE[zi] * factor;
        }
        BlockStats { luma, chroma }
    }
}

/// Expected payload bytes of one coded 8×8 block with coefficient scales
/// `b` at quantiser scale `quant_scale`, mirroring the real coder's cost
/// structure: `BLOCK_CODED` + `RLE_END` markers, and per surviving
/// coefficient a run byte plus VLC bytes.
fn block_cost(b: &[f64; 64], quant_scale: f64) -> f64 {
    let mut cost = 2.0;
    for zi in 0..64 {
        let delta = f64::from(QUANT_BASE[zi]) * quant_scale / 255.0;
        if b[zi] <= 0.0 {
            continue;
        }
        if zi == 0 {
            // DC is a concentrated magnitude (block mean × 8), not a
            // zero-centred Laplacian: code its typical VLC length.
            let q_typ = b[0] / delta;
            if q_typ >= 0.5 {
                cost += 1.0 + vlc_bytes(2.0 * q_typ);
            } else {
                cost += 2.0 * (-THETA * delta / (2.0 * b[0])).exp();
            }
        } else {
            let p_nz = (-(THETA * delta / (2.0 * b[zi])).powf(RHO)).exp();
            // Probability the coefficient needs a second VLC byte
            // (|q| > 63), conditional on being nonzero.
            let p_big = (-63.0 * delta / b[zi]).exp();
            cost += p_nz * (2.0 + p_big);
        }
    }
    cost
}

/// VLC length in bytes of the zigzag-mapped unsigned magnitude `u`
/// (7 payload bits per byte).
fn vlc_bytes(u: f64) -> f64 {
    if u < 128.0 {
        1.0
    } else if u < 16384.0 {
        2.0
    } else if u < 2_097_152.0 {
        3.0
    } else {
        4.0
    }
}

/// Predicts entropy-coded frame bytes from [`BlockStats`] as a function of
/// the quantiser step, mirroring [`crate::TransformCodec`]'s bitstream
/// layout (4:2:0 planes, per-block markers, run + VLC coefficients, and
/// the 16-byte header).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EntropyModel {
    stats: BlockStats,
    pixels: f64,
}

impl EntropyModel {
    /// A model over `pixels` *encoded* luma pixels (i.e. after any VRS
    /// downscale) with the given layer statistics.
    #[must_use]
    pub fn new(pixels: f64, stats: BlockStats) -> Self {
        EntropyModel {
            stats,
            pixels: pixels.max(0.0),
        }
    }

    /// A model for a VRS-shaded layer given its *native* pixel count: the
    /// encoder sees `native_pixels × linear_scale²` pixels with
    /// scale-boosted statistics.
    #[must_use]
    pub fn vrs_layer(
        native_pixels: f64,
        detail: f64,
        motion: f64,
        linear_scale: f64,
        eccentricity_deg: f64,
    ) -> Self {
        let s = linear_scale.clamp(0.05, 1.0);
        EntropyModel::layer(native_pixels * s * s, detail, motion, s, eccentricity_deg)
    }

    /// Convenience: build the [`BlockStats`] and the model in one call.
    #[must_use]
    pub fn layer(
        pixels: f64,
        detail: f64,
        motion: f64,
        linear_scale: f64,
        eccentricity_deg: f64,
    ) -> Self {
        EntropyModel::new(
            pixels,
            BlockStats::layer(detail, motion, linear_scale, eccentricity_deg),
        )
    }

    /// The quantiser scale the real coder uses at `quality` (its
    /// `quant_scale` mapping, including the f32 rounding).
    #[must_use]
    pub fn quant_scale_for_quality(quality: f64) -> f64 {
        let q = quality.clamp(0.01, 1.0);
        f64::from((3.5 * (-3.2 * q).exp()).max(0.04) as f32)
    }

    /// Inverse of [`EntropyModel::quant_scale_for_quality`] (before the
    /// 0.04 floor, which lies outside the codec's quality range anyway).
    #[must_use]
    pub fn quality_for_quant_scale(quant_scale: f64) -> f64 {
        (-(quant_scale.max(1e-9) / 3.5).ln() / 3.2).clamp(0.01, 1.0)
    }

    /// Predicted encoded size in bytes at the codec `quality` knob.
    #[must_use]
    pub fn frame_bytes(&self, quality: f64) -> f64 {
        self.bytes_at_step(Self::quant_scale_for_quality(quality))
    }

    /// Predicted encoded size in bytes at an explicit quantiser scale.
    #[must_use]
    pub fn bytes_at_step(&self, quant_scale: f64) -> f64 {
        let qs = quant_scale.max(1e-6);
        // 4:2:0 → one full-resolution luma plane and two quarter-resolution
        // chroma planes, all in 8×8 blocks.
        let luma_blocks = self.pixels / 64.0;
        let chroma_blocks = self.pixels / 256.0;
        16.0 + luma_blocks * block_cost(&self.stats.luma, qs)
            + 2.0 * chroma_blocks * block_cost(&self.stats.chroma, qs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TransformCodec;

    /// The acceptance-criteria calibration grid: the model must track the
    /// real coder within ~15% across detail × quality on the calibration
    /// corpus (intra frames, full scale, central vision).
    #[test]
    fn entropy_model_tracks_real_codec() {
        let details = [0.1, 0.3, 0.5, 0.7, 0.9];
        let qualities = [0.2, 0.35, 0.5, 0.65, 0.8];
        let mut worst: f64 = 0.0;
        for &detail in &details {
            let frame = crate::test_content::game_frame(64, detail, 11);
            let model = EntropyModel::layer(64.0 * 64.0, detail, 1.0, 1.0, 0.0);
            for &quality in &qualities {
                let actual = TransformCodec::new(quality)
                    .encode_intra(&frame)
                    .size_bytes() as f64;
                let predicted = model.frame_bytes(quality);
                let err = (predicted / actual - 1.0).abs();
                worst = worst.max(err);
                assert!(
                    err <= 0.15,
                    "detail {detail} quality {quality}: predicted {predicted:.0} \
                     actual {actual:.0} err {err:.3}"
                );
            }
        }
        // The fit should be comfortably inside the bound somewhere, not
        // just squeaking by everywhere.
        assert!(worst > 0.01, "suspiciously exact fit: worst {worst}");
    }

    /// The calibration must not be a single-noise-realisation artifact: a
    /// different seed stays within a slightly looser band.
    #[test]
    fn calibration_holds_on_unseen_content() {
        for &detail in &[0.2, 0.6] {
            let frame = crate::test_content::game_frame(64, detail, 5);
            let model = EntropyModel::layer(64.0 * 64.0, detail, 1.0, 1.0, 0.0);
            for &quality in &[0.3, 0.6] {
                let actual = TransformCodec::new(quality)
                    .encode_intra(&frame)
                    .size_bytes() as f64;
                let predicted = model.frame_bytes(quality);
                let err = (predicted / actual - 1.0).abs();
                assert!(
                    err <= 0.2,
                    "seed 5 detail {detail} quality {quality}: err {err:.3}"
                );
            }
        }
    }

    #[test]
    fn bytes_monotone_in_quality_detail_and_pixels() {
        let mut last = 0.0;
        for q in [0.1, 0.3, 0.5, 0.7, 0.9] {
            let b = EntropyModel::layer(4096.0, 0.5, 1.0, 1.0, 0.0).frame_bytes(q);
            assert!(b > last, "quality {q}: {b} <= {last}");
            last = b;
        }
        last = 0.0;
        for d in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let b = EntropyModel::layer(4096.0, d, 1.0, 1.0, 0.0).frame_bytes(0.6);
            assert!(b > last, "detail {d}: {b} <= {last}");
            last = b;
        }
        let small = EntropyModel::layer(1024.0, 0.5, 1.0, 1.0, 0.0).frame_bytes(0.6);
        let large = EntropyModel::layer(8192.0, 0.5, 1.0, 1.0, 0.0).frame_bytes(0.6);
        assert!(
            large > 4.0 * small,
            "pixels scale linearly: {small} {large}"
        );
    }

    #[test]
    fn coarser_step_means_fewer_bytes() {
        let model = EntropyModel::layer(4096.0, 0.5, 1.0, 1.0, 0.0);
        let fine = model.bytes_at_step(0.2);
        let coarse = model.bytes_at_step(2.0);
        assert!(fine > coarse, "fine {fine} coarse {coarse}");
    }

    #[test]
    fn motion_and_eccentricity_shrink_frames() {
        let moving = EntropyModel::layer(4096.0, 0.5, 1.0, 1.0, 0.0).frame_bytes(0.6);
        let still = EntropyModel::layer(4096.0, 0.5, 0.0, 1.0, 0.0).frame_bytes(0.6);
        assert!(still < moving, "still {still} moving {moving}");
        let central = EntropyModel::layer(4096.0, 0.5, 1.0, 1.0, 0.0).frame_bytes(0.6);
        let far = EntropyModel::layer(4096.0, 0.5, 1.0, 1.0, 40.0).frame_bytes(0.6);
        assert!(far < central, "far {far} central {central}");
    }

    /// Downscaled (VRS-shaded) layers: the s^−β amplitude boost reproduces
    /// the real coder's sub-quadratic byte scaling under box downscale.
    #[test]
    fn downscale_boost_tracks_real_codec() {
        let master = crate::test_content::game_frame(128, 0.5, 11);
        let down = crate::test_content::box_down(&master, 2);
        for &quality in &[0.35, 0.6] {
            let actual = TransformCodec::new(quality)
                .encode_intra(&down)
                .size_bytes() as f64;
            // The model sees the downscaled layer as (128·0.5)² encoded
            // pixels with scale-boosted statistics.
            let predicted =
                EntropyModel::layer(64.0 * 64.0, 0.5, 1.0, 0.5, 0.0).frame_bytes(quality);
            let err = (predicted / actual - 1.0).abs();
            assert!(err <= 0.3, "quality {quality}: err {err:.3}");
        }
    }

    #[test]
    fn quality_step_mapping_round_trips() {
        for q in [0.1, 0.4, 0.6, 0.9] {
            let step = EntropyModel::quant_scale_for_quality(q);
            let back = EntropyModel::quality_for_quant_scale(step);
            assert!((back - q).abs() < 1e-6, "q {q} -> {step} -> {back}");
        }
    }
}
