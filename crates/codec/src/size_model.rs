//! Closed-form compressed-size model.
//!
//! The frame-level simulation needs compressed sizes for millions of frame ×
//! parameter combinations; running the full transform codec for each would
//! dominate runtime without changing the answer. This model captures the
//! two effects that matter:
//!
//! 1. **Content detail** sets bits-per-pixel. Calibrated so that a
//!    1920×2160 background at game-like detail compresses to the ~500–650 KB
//!    of Table 1's "Back Size" column (H.264, high quality).
//! 2. **Resolution scaling is sub-quadratic in bytes.** Downscaling an
//!    image before encoding concentrates the surviving detail: bytes shrink
//!    like `scaleᵞ` with `γ < 2`, not like the pixel count (`scale²`). The
//!    γ default is fitted against the real transform codec (see the
//!    cross-validation test) and against Fig. 6's "relative frame size"
//!    curve.

use std::fmt;

/// Closed-form compressed-size model for rendered frames.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizeModel {
    bpp_base: f64,
    bpp_detail: f64,
    gamma: f64,
}

impl SizeModel {
    /// Creates a model.
    ///
    /// * `bpp_base` — bits per pixel for detail-free content.
    /// * `bpp_detail` — additional bits per pixel at full detail.
    /// * `gamma` — resolution-scaling exponent in `(0, 2]`.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-positive or `gamma > 2`.
    #[must_use]
    pub fn new(bpp_base: f64, bpp_detail: f64, gamma: f64) -> Self {
        assert!(
            bpp_base > 0.0 && bpp_detail > 0.0,
            "bpp parameters must be positive"
        );
        assert!(gamma > 0.0 && gamma <= 2.0, "gamma must be in (0, 2]");
        SizeModel {
            bpp_base,
            bpp_detail,
            gamma,
        }
    }

    /// The resolution-scaling exponent γ.
    #[must_use]
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Bits per pixel at native resolution for content `detail ∈ [0, 1]`.
    #[must_use]
    pub fn bits_per_pixel(&self, detail: f64) -> f64 {
        self.bpp_base + self.bpp_detail * detail.clamp(0.0, 1.0)
    }

    /// Compressed bytes for a region of `native_pixels` (at native display
    /// resolution) encoded after linear downscaling by `scale ∈ (0, 1]`.
    #[must_use]
    pub fn frame_bytes(&self, native_pixels: u64, detail: f64, scale: f64) -> f64 {
        let scale = scale.clamp(1e-3, 1.0);
        native_pixels as f64 * self.bits_per_pixel(detail) * scale.powf(self.gamma) / 8.0
    }

    /// Compressed bytes for a depth plane of the same region (static
    /// collaborative rendering must also ship depth for composition;
    /// depth compresses harder than color).
    #[must_use]
    pub fn depth_bytes(&self, native_pixels: u64, scale: f64) -> f64 {
        // Depth maps are smooth: roughly 40% of a low-detail color plane.
        self.frame_bytes(native_pixels, 0.1, scale) * 0.4
    }
}

impl Default for SizeModel {
    /// Calibrated default: 0.4 + 1.2·detail bits/pixel, γ = 1.25.
    ///
    /// At detail 0.55 a 1920×2160 frame gives ≈ 550 KB, matching Table 1.
    fn default() -> Self {
        SizeModel::new(0.4, 1.2, 1.25)
    }
}

impl fmt::Display for SizeModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bytes = px·({:.2} + {:.2}·detail)·scale^{:.2} / 8",
            self.bpp_base, self.bpp_detail, self.gamma
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::TransformCodec;

    const EYE_PIXELS: u64 = 1920 * 2160;

    #[test]
    fn table1_back_sizes_reproduced() {
        // Table 1: Foveated3D 646 KB (detail 0.75), Viking 530 KB (0.55),
        // Nature 482 KB (0.45), Sponza 537 KB (0.57), San Miguel 572 KB
        // (0.63).
        let m = SizeModel::default();
        let expect = [
            (0.75, 646.0),
            (0.55, 530.0),
            (0.45, 482.0),
            (0.57, 537.0),
            (0.63, 572.0),
        ];
        for (detail, kb) in expect {
            let bytes = m.frame_bytes(EYE_PIXELS, detail, 1.0) / 1024.0;
            assert!(
                (bytes - kb).abs() / kb < 0.15,
                "detail {detail}: {bytes:.0} KB vs Table 1 {kb} KB"
            );
        }
    }

    #[test]
    fn bytes_monotone_in_detail_and_scale() {
        let m = SizeModel::default();
        assert!(m.frame_bytes(EYE_PIXELS, 0.8, 1.0) > m.frame_bytes(EYE_PIXELS, 0.2, 1.0));
        assert!(m.frame_bytes(EYE_PIXELS, 0.5, 1.0) > m.frame_bytes(EYE_PIXELS, 0.5, 0.5));
        assert!(m.frame_bytes(EYE_PIXELS, 0.5, 0.5) > m.frame_bytes(EYE_PIXELS, 0.5, 0.25));
    }

    #[test]
    fn subquadratic_scaling() {
        // Halving resolution must NOT quarter the bytes (gamma < 2).
        let m = SizeModel::default();
        let full = m.frame_bytes(EYE_PIXELS, 0.5, 1.0);
        let half = m.frame_bytes(EYE_PIXELS, 0.5, 0.5);
        assert!(half > full / 4.0);
        assert!(half < full / 1.5);
    }

    #[test]
    fn depth_cheaper_than_color() {
        let m = SizeModel::default();
        assert!(m.depth_bytes(EYE_PIXELS, 1.0) < m.frame_bytes(EYE_PIXELS, 0.5, 1.0));
        assert!(m.depth_bytes(EYE_PIXELS, 1.0) > 0.0);
    }

    #[test]
    fn gamma_validated() {
        assert!(std::panic::catch_unwind(|| SizeModel::new(0.4, 1.2, 2.5)).is_err());
        assert!(std::panic::catch_unwind(|| SizeModel::new(0.0, 1.2, 1.0)).is_err());
    }

    /// Calibration regression over a detail × quality grid: the real codec's
    /// encoded sizes must stay monotone in both axes, and the closed-form
    /// model must track the same detail ordering — so the analytical path
    /// can't silently drift from `TransformCodec` behaviour.
    #[test]
    fn grid_monotone_against_real_codec() {
        let details = [0.1, 0.3, 0.5, 0.7, 0.9];
        let qualities = [0.2, 0.4, 0.6, 0.8];
        let mut grid = [[0usize; 4]; 5];
        for (di, &detail) in details.iter().enumerate() {
            let frame = crate::test_content::game_frame(64, detail, 31);
            for (qi, &quality) in qualities.iter().enumerate() {
                grid[di][qi] = TransformCodec::new(quality)
                    .encode_intra(&frame)
                    .size_bytes();
            }
        }
        // Monotone in quality at every detail, and in detail at every
        // quality (strictly: each grid step changes quantiser step or
        // content energy enough to move the coded size).
        for (di, row) in grid.iter().enumerate() {
            for qi in 1..qualities.len() {
                assert!(
                    row[qi] > row[qi - 1],
                    "detail {}: bytes not monotone in quality ({} vs {})",
                    details[di],
                    row[qi],
                    row[qi - 1]
                );
            }
        }
        for qi in 0..qualities.len() {
            for di in 1..details.len() {
                assert!(
                    grid[di][qi] > grid[di - 1][qi],
                    "quality {}: bytes not monotone in detail ({} vs {})",
                    qualities[qi],
                    grid[di][qi],
                    grid[di - 1][qi]
                );
            }
        }
        // The closed-form model orders details identically.
        let m = SizeModel::default();
        for di in 1..details.len() {
            assert!(
                m.frame_bytes(64 * 64, details[di], 1.0)
                    > m.frame_bytes(64 * 64, details[di - 1], 1.0)
            );
        }
    }

    /// Cross-validation: the γ exponent matches the real transform codec's
    /// behaviour when encoding box-downscaled versions of the same content
    /// (flat regions + edges + mild noise, the mix that makes compressed
    /// size scale sub-quadratically with resolution).
    #[test]
    fn gamma_matches_real_codec() {
        let codec = TransformCodec::default();
        let master = crate::test_content::game_frame(128, 0.3, 23);
        let b_full = codec.encode_intra(&master).size_bytes() as f64;
        let b_quarter = codec
            .encode_intra(&crate::test_content::box_down(&master, 4))
            .size_bytes() as f64;
        // bytes(s) = bytes(1) * s^gamma  =>  gamma = ln(ratio)/ln(scale).
        let gamma = (b_quarter / b_full).ln() / (0.25f64).ln();
        let model_gamma = SizeModel::default().gamma();
        assert!(
            (gamma - model_gamma).abs() < 0.5,
            "fitted gamma {gamma:.2} vs model {model_gamma}"
        );
    }
}
