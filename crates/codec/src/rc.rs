//! Per-tenant closed-loop rate control.
//!
//! A [`RateController`] holds one scalar of state — the current codec
//! quality — and adapts it so the tenant's per-frame transmitted bytes
//! track a target derived from its allocated link share:
//! `target_bytes = allocated_mbps × 10⁶ / 8 / target_fps`.
//!
//! Adaptation happens in the *quantiser-step* domain (the physically
//! meaningful knob: coded bytes fall roughly as a power of the step), in
//! the classic one-pole rate-controller idiom: after each frame the step
//! is multiplied by `(actual/target)^gain`, clamped to a bounded per-frame
//! ratio so a single outlier frame cannot slam the quality, with a
//! deadband around the target so a converged controller holds its quality
//! exactly (bit-stable output). Fully deterministic and allocation-free:
//! the controller is two `Copy` structs of scalars.

/// Configuration for the per-tenant rate controller.
///
/// `enabled` defaults to **off**: the fleet's transmitted bytes then come
/// from the closed-form size model exactly as before, keeping every
/// golden-pinned trajectory bit-identical.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateControlConfig {
    /// Master switch; off preserves the legacy closed-form byte path.
    pub enabled: bool,
    /// Codec quality a fresh controller starts at.
    pub initial_quality: f64,
    /// Lower quality bound (floor on how coarse the stream may get).
    pub min_quality: f64,
    /// Upper quality bound (streaming finer than this wastes link).
    pub max_quality: f64,
    /// Damping exponent on the `(actual/target)` error ratio; 1.0 would
    /// correct the full error in one frame (assuming bytes ∝ 1/step),
    /// smaller values trade convergence speed for overshoot immunity.
    pub gain: f64,
    /// Per-frame bound on the quantiser-step multiplier (and its
    /// reciprocal); limits how fast quality can move.
    pub max_step_ratio: f64,
    /// Relative error inside which the controller holds its quality.
    pub deadband: f64,
}

impl Default for RateControlConfig {
    fn default() -> Self {
        RateControlConfig {
            enabled: false,
            initial_quality: 0.6,
            min_quality: 0.05,
            max_quality: 0.95,
            gain: 0.6,
            max_step_ratio: 1.35,
            deadband: 0.04,
        }
    }
}

impl RateControlConfig {
    /// The default configuration with the controller switched on.
    #[must_use]
    pub fn on() -> Self {
        RateControlConfig {
            enabled: true,
            ..RateControlConfig::default()
        }
    }
}

/// One tenant's closed-loop rate controller (see module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateController {
    config: RateControlConfig,
    quality: f64,
}

/// The codec's quality → quantiser-step mapping (without the 0.04 floor,
/// which lies outside the codec's quality range).
fn quant_step(quality: f64) -> f64 {
    3.5 * (-3.2 * quality).exp()
}

/// Inverse of [`quant_step`].
fn quality_for_step(step: f64) -> f64 {
    -(step.max(1e-9) / 3.5).ln() / 3.2
}

impl RateController {
    /// A fresh controller at the configured initial quality.
    #[must_use]
    pub fn new(config: RateControlConfig) -> Self {
        RateController {
            config,
            quality: config
                .initial_quality
                .clamp(config.min_quality, config.max_quality),
        }
    }

    /// The quality the next frame should be encoded at.
    #[must_use]
    pub fn quality(&self) -> f64 {
        self.quality
    }

    /// The controller's configuration.
    #[must_use]
    pub fn config(&self) -> &RateControlConfig {
        &self.config
    }

    /// Target bytes per frame for an allocated link share at a frame rate.
    #[must_use]
    pub fn target_bytes(allocated_mbps: f64, target_fps: f64) -> f64 {
        if target_fps <= 0.0 {
            return 0.0;
        }
        allocated_mbps.max(0.0) * 1e6 / 8.0 / target_fps
    }

    /// Feeds back one frame's actual transmitted bytes against its target,
    /// adapting quality for the next frame. Non-positive inputs (no link
    /// allocation yet, nothing transmitted) leave the controller untouched.
    pub fn observe(&mut self, actual_bytes: f64, target_bytes: f64) {
        if actual_bytes <= 0.0 || target_bytes <= 0.0 {
            return;
        }
        let ratio = actual_bytes / target_bytes;
        if (ratio - 1.0).abs() <= self.config.deadband {
            return;
        }
        let step = quant_step(self.quality);
        let bound = self.config.max_step_ratio.max(1.0);
        let desired = step * ratio.powf(self.config.gain);
        let clamped = desired.clamp(step / bound, step * bound);
        self.quality =
            quality_for_step(clamped).clamp(self.config.min_quality, self.config.max_quality);
    }

    /// Resets to the initial quality (a recycled tenant slot must not
    /// inherit the previous occupant's operating point).
    pub fn reset(&mut self) {
        self.quality = self
            .config
            .initial_quality
            .clamp(self.config.min_quality, self.config.max_quality);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EntropyModel;

    /// Drive the controller against the entropy model as the plant; it
    /// must settle with bytes inside the deadband of the target.
    #[test]
    fn converges_onto_achievable_target() {
        let model = EntropyModel::layer(256.0 * 256.0, 0.6, 1.0, 1.0, 0.0);
        for &target in &[30_000.0, 60_000.0, 90_000.0] {
            let mut rc = RateController::new(RateControlConfig::on());
            let mut bytes = 0.0;
            for _ in 0..60 {
                bytes = model.frame_bytes(rc.quality());
                rc.observe(bytes, target);
            }
            let err = (bytes / target - 1.0).abs();
            assert!(
                err <= RateControlConfig::default().deadband + 1e-9,
                "target {target}: settled at {bytes:.0} (err {err:.3})"
            );
        }
    }

    #[test]
    fn saturates_at_quality_bounds() {
        let model = EntropyModel::layer(256.0 * 256.0, 0.6, 1.0, 1.0, 0.0);
        let cfg = RateControlConfig::on();
        let mut starved = RateController::new(cfg);
        let mut lavish = RateController::new(cfg);
        for _ in 0..80 {
            let b = model.frame_bytes(starved.quality());
            starved.observe(b, 1_000.0);
            let b = model.frame_bytes(lavish.quality());
            lavish.observe(b, 10_000_000.0);
        }
        assert_eq!(starved.quality(), cfg.min_quality);
        assert_eq!(lavish.quality(), cfg.max_quality);
    }

    #[test]
    fn deadband_holds_quality_bit_stable() {
        let mut rc = RateController::new(RateControlConfig::on());
        let q = rc.quality();
        // Errors inside the deadband must not move quality at all.
        rc.observe(10_300.0, 10_000.0);
        assert_eq!(rc.quality().to_bits(), q.to_bits());
        rc.observe(9_700.0, 10_000.0);
        assert_eq!(rc.quality().to_bits(), q.to_bits());
    }

    #[test]
    fn per_frame_step_ratio_is_bounded() {
        let cfg = RateControlConfig::on();
        let mut rc = RateController::new(cfg);
        let before = quant_step(rc.quality());
        // A 100x overshoot still moves the step by at most max_step_ratio.
        rc.observe(1_000_000.0, 10_000.0);
        let after = quant_step(rc.quality());
        assert!((after / before - cfg.max_step_ratio).abs() < 1e-9);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let model = EntropyModel::layer(128.0 * 128.0, 0.4, 0.7, 0.8, 10.0);
            let mut rc = RateController::new(RateControlConfig::on());
            let mut trace = Vec::new();
            for i in 0..40 {
                let bytes = model.frame_bytes(rc.quality());
                rc.observe(bytes, 20_000.0 + f64::from(i % 7) * 500.0);
                trace.push(rc.quality().to_bits());
            }
            trace
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn ignores_degenerate_inputs() {
        let mut rc = RateController::new(RateControlConfig::on());
        let q = rc.quality();
        rc.observe(0.0, 10_000.0);
        rc.observe(10_000.0, 0.0);
        rc.observe(-5.0, -5.0);
        assert_eq!(rc.quality().to_bits(), q.to_bits());
        assert_eq!(RateController::target_bytes(8.0, 0.0), 0.0);
        assert_eq!(RateController::target_bytes(8.0, 50.0), 20_000.0);
    }

    #[test]
    fn reset_restores_initial_quality() {
        let mut rc = RateController::new(RateControlConfig::on());
        for _ in 0..20 {
            rc.observe(50_000.0, 10_000.0);
        }
        assert_ne!(rc.quality(), RateControlConfig::default().initial_quality);
        rc.reset();
        assert_eq!(rc.quality(), RateControlConfig::default().initial_quality);
    }

    #[test]
    fn default_is_off() {
        assert!(!RateControlConfig::default().enabled);
        assert!(RateControlConfig::on().enabled);
    }
}
