//! Video codec substrate for the Q-VR reproduction.
//!
//! The paper compresses remote-rendered frames with H.264 (via ffmpeg) and
//! computes network latency from the compressed size (Sec. 5). H.264 itself
//! is out of scope, so this crate provides the closest equivalent that
//! exercises the same code path:
//!
//! * [`transform`] — a real 8×8 DCT transform codec (quantisation, zigzag,
//!   run-length + variable-length byte coding) producing actual bitstreams
//!   from [`qvr_gpu::Framebuffer`] contents, with intra and inter (frame
//!   delta) modes. Round-trip quality is measured in PSNR.
//! * [`size_model`] — a closed-form compressed-size model,
//!   `bytes = pixels × bpp(detail) × scaleᵞ / 8`, used by the frame-level
//!   simulation where running the full transform per frame would be wasteful.
//!   Tests fit the model against the real codec.
//! * [`latency`] — encode/decode latency models for hardware video engines
//!   (the "video decoder" accelerator of Fig. 4's pipeline).
//!
//! # Example
//!
//! ```
//! use qvr_codec::{SizeModel, TransformCodec};
//! use qvr_gpu::{Framebuffer, Rgba};
//!
//! // Closed-form: a 1920x2160 frame of moderate detail compresses to the
//! // Table 1 "Back Size" ballpark (~0.5 MB).
//! let model = SizeModel::default();
//! let bytes = model.frame_bytes(1920 * 2160, 0.55, 1.0);
//! assert!((300_000.0..900_000.0).contains(&bytes));
//!
//! // Real transform codec round-trip.
//! let frame = Framebuffer::new(64, 64, Rgba::new(0.3, 0.5, 0.7, 1.0));
//! let codec = TransformCodec::new(0.6);
//! let encoded = codec.encode_intra(&frame);
//! let decoded = codec.decode(&encoded).unwrap();
//! assert!(decoded.psnr(&frame) > 30.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod latency;
pub mod rc;
pub mod size_model;
pub mod stats;
pub mod transform;

pub use latency::CodecLatencyModel;
pub use rc::{RateControlConfig, RateController};
pub use size_model::SizeModel;
pub use stats::{BlockStats, EntropyModel};
pub use transform::{CodecError, EncodedFrame, TransformCodec};

/// Shared synthetic content for tests: game-like frames (smooth regions,
/// hard edges, correlated mild noise) rather than incompressible white
/// noise.
#[cfg(test)]
pub(crate) mod test_content {
    use qvr_gpu::{Framebuffer, Rgba, Texture};

    /// A `size`×`size` frame mixing flat regions, edges, a gradient, and
    /// `detail`-scaled texture noise with luma-correlated channels.
    pub fn game_frame(size: u32, detail: f64, seed: u64) -> Framebuffer {
        let checker = Texture::checkerboard(
            size,
            6,
            Rgba::new(0.2, 0.25, 0.3, 1.0),
            Rgba::new(0.8, 0.75, 0.6, 1.0),
        );
        let noise = Texture::value_noise(size, seed, 0.6);
        let mut fb = Framebuffer::new(size, size, Rgba::BLACK);
        let amp = detail.clamp(0.0, 1.0) as f32 * 0.35;
        for y in 0..size {
            for x in 0..size {
                let base = checker.fetch(i64::from(x), i64::from(y));
                let n = noise.fetch(i64::from(x), i64::from(y)).r() - 0.5;
                let grad = 0.15 * (x as f32 / size as f32);
                let v = |c: f32| (c * 0.8 + amp * n + grad).clamp(0.0, 1.0);
                fb.set_pixel(x, y, Rgba::new(v(base.r()), v(base.g()), v(base.b()), 1.0));
            }
        }
        fb
    }

    /// Area-averaging (box) downscale by an integer factor, as a video
    /// scaler would do before encoding.
    pub fn box_down(master: &Framebuffer, factor: u32) -> Framebuffer {
        let (w, h) = (master.width() / factor, master.height() / factor);
        let mut out = Framebuffer::new(w, h, Rgba::BLACK);
        for y in 0..h {
            for x in 0..w {
                let mut acc = [0.0f32; 4];
                for dy in 0..factor {
                    for dx in 0..factor {
                        let p = master.pixel(x * factor + dx, y * factor + dy);
                        for (a, c) in acc.iter_mut().zip(p.0.iter()) {
                            *a += c;
                        }
                    }
                }
                let n = (factor * factor) as f32;
                out.set_pixel(x, y, Rgba([acc[0] / n, acc[1] / n, acc[2] / n, acc[3] / n]));
            }
        }
        out
    }
}
