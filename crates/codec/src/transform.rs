//! A real 8×8 DCT transform codec over framebuffers.
//!
//! The pipeline per 8×8 luma/chroma block: level shift → forward DCT →
//! quantisation (JPEG-style matrix scaled by quality) → zigzag scan →
//! run-length coding of zeros → variable-length byte coding. Inter mode
//! codes the difference against a reference frame and skips blocks whose
//! difference is negligible, which is where frame-to-frame coherence turns
//! into bitrate savings.
//!
//! Color is handled as Y'CbCr with 4:2:0 chroma subsampling, like every
//! deployed video codec.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use qvr_gpu::{Framebuffer, Rgba};
use std::error::Error;
use std::fmt;

/// Errors produced while decoding a bitstream.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// The bitstream ended prematurely or a marker was malformed.
    Truncated,
    /// The header advertised impossible dimensions.
    BadHeader,
    /// An inter frame was decoded without the required reference.
    MissingReference,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CodecError::Truncated => "bitstream truncated",
            CodecError::BadHeader => "invalid bitstream header",
            CodecError::MissingReference => "inter frame requires a reference frame",
        };
        f.write_str(s)
    }
}

impl Error for CodecError {}

/// An encoded frame: header + entropy-coded blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedFrame {
    /// Whether this frame codes a delta against a reference.
    pub inter: bool,
    width: u32,
    height: u32,
    payload: Bytes,
}

impl EncodedFrame {
    /// Compressed size in bytes (payload + a nominal 16-byte header).
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.payload.len() + 16
    }

    /// Frame width in pixels.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Frame height in pixels.
    #[must_use]
    pub fn height(&self) -> u32 {
        self.height
    }
}

/// The transform codec with a quality knob.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransformCodec {
    quality: f64,
}

/// JPEG luminance quantisation matrix (quality 0.5 reference).
pub(crate) const QUANT_BASE: [f32; 64] = [
    16.0, 11.0, 10.0, 16.0, 24.0, 40.0, 51.0, 61.0, //
    12.0, 12.0, 14.0, 19.0, 26.0, 58.0, 60.0, 55.0, //
    14.0, 13.0, 16.0, 24.0, 40.0, 57.0, 69.0, 56.0, //
    14.0, 17.0, 22.0, 29.0, 51.0, 87.0, 80.0, 62.0, //
    18.0, 22.0, 37.0, 56.0, 68.0, 109.0, 103.0, 77.0, //
    24.0, 35.0, 55.0, 64.0, 81.0, 104.0, 113.0, 92.0, //
    49.0, 64.0, 78.0, 87.0, 103.0, 121.0, 120.0, 101.0, //
    72.0, 92.0, 95.0, 98.0, 112.0, 100.0, 103.0, 99.0,
];

/// Zigzag scan order for an 8×8 block.
pub(crate) const ZIGZAG: [usize; 64] = [
    0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5, 12, 19, 26, 33, 40, 48, 41, 34, 27, 20,
    13, 6, 7, 14, 21, 28, 35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51, 58, 59,
    52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
];

impl TransformCodec {
    /// Creates a codec with `quality` in `[0, 1]`; higher preserves more
    /// detail and produces larger bitstreams.
    #[must_use]
    pub fn new(quality: f64) -> Self {
        TransformCodec {
            quality: quality.clamp(0.01, 1.0),
        }
    }

    /// The quality setting.
    #[must_use]
    pub fn quality(&self) -> f64 {
        self.quality
    }

    /// Quantisation scale: quality 1.0 ⇒ fine (~0.14×), 0.0 ⇒ coarse (3.5×).
    pub(crate) fn quant_scale(&self) -> f32 {
        // Exponential mapping gives a useful dynamic range.
        (3.5 * (-3.2 * self.quality).exp()).max(0.04) as f32
    }

    /// Encodes a frame without a reference (key frame).
    #[must_use]
    pub fn encode_intra(&self, frame: &Framebuffer) -> EncodedFrame {
        self.encode_impl(frame, None)
    }

    /// Encodes a frame as a delta against `reference`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ from the reference.
    #[must_use]
    pub fn encode_inter(&self, frame: &Framebuffer, reference: &Framebuffer) -> EncodedFrame {
        assert_eq!(
            (frame.width(), frame.height()),
            (reference.width(), reference.height()),
            "inter frame must match reference dimensions"
        );
        self.encode_impl(frame, Some(reference))
    }

    fn encode_impl(&self, frame: &Framebuffer, reference: Option<&Framebuffer>) -> EncodedFrame {
        let (w, h) = (frame.width(), frame.height());
        let planes = to_ycbcr_420(frame);
        let ref_planes = reference.map(to_ycbcr_420);

        let mut out = BytesMut::with_capacity(1024);
        let scale = self.quant_scale();
        for (pi, plane) in planes.iter().enumerate() {
            let rp = ref_planes.as_ref().map(|r| &r[pi]);
            encode_plane(plane, rp, scale, &mut out);
        }
        EncodedFrame {
            inter: reference.is_some(),
            width: w,
            height: h,
            payload: out.freeze(),
        }
    }

    /// Decodes an intra frame.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::MissingReference`] for inter frames (use
    /// [`TransformCodec::decode_with_reference`]), or a parse error for
    /// malformed bitstreams.
    pub fn decode(&self, encoded: &EncodedFrame) -> Result<Framebuffer, CodecError> {
        if encoded.inter {
            return Err(CodecError::MissingReference);
        }
        self.decode_impl(encoded, None)
    }

    /// Decodes a frame, supplying the reference for inter frames.
    ///
    /// # Errors
    ///
    /// Returns a parse error for malformed bitstreams.
    pub fn decode_with_reference(
        &self,
        encoded: &EncodedFrame,
        reference: &Framebuffer,
    ) -> Result<Framebuffer, CodecError> {
        self.decode_impl(encoded, Some(reference))
    }

    fn decode_impl(
        &self,
        encoded: &EncodedFrame,
        reference: Option<&Framebuffer>,
    ) -> Result<Framebuffer, CodecError> {
        let (w, h) = (encoded.width, encoded.height);
        if w == 0 || h == 0 {
            return Err(CodecError::BadHeader);
        }
        let ref_planes = reference.map(to_ycbcr_420);
        let mut payload = encoded.payload.clone();
        let scale = self.quant_scale();
        let dims = plane_dims(w, h);
        let mut planes = Vec::with_capacity(3);
        for (pi, (pw, ph)) in dims.iter().enumerate() {
            let rp = ref_planes.as_ref().map(|r| &r[pi]);
            planes.push(decode_plane(*pw, *ph, rp, scale, &mut payload)?);
        }
        Ok(from_ycbcr_420(w, h, &planes))
    }
}

impl Default for TransformCodec {
    /// Quality 0.6: visually transparent for game content while achieving
    /// H.264-like compression ratios (~20:1 on detailed frames).
    fn default() -> Self {
        TransformCodec::new(0.6)
    }
}

/// One image plane (luma or subsampled chroma).
#[derive(Debug, Clone, PartialEq)]
struct Plane {
    w: u32,
    h: u32,
    data: Vec<f32>,
}

impl Plane {
    fn new(w: u32, h: u32) -> Self {
        Plane {
            w,
            h,
            data: vec![0.0; (w as usize) * (h as usize)],
        }
    }

    fn at(&self, x: u32, y: u32) -> f32 {
        let x = x.min(self.w - 1);
        let y = y.min(self.h - 1);
        self.data[(y as usize) * (self.w as usize) + x as usize]
    }

    fn set(&mut self, x: u32, y: u32, v: f32) {
        if x < self.w && y < self.h {
            self.data[(y as usize) * (self.w as usize) + x as usize] = v;
        }
    }
}

fn plane_dims(w: u32, h: u32) -> [(u32, u32); 3] {
    [
        (w, h),
        (w.div_ceil(2), h.div_ceil(2)),
        (w.div_ceil(2), h.div_ceil(2)),
    ]
}

/// RGB → Y'CbCr with 4:2:0 chroma subsampling.
fn to_ycbcr_420(frame: &Framebuffer) -> [Plane; 3] {
    let (w, h) = (frame.width(), frame.height());
    let [yd, cd, _] = plane_dims(w, h);
    let mut y = Plane::new(yd.0, yd.1);
    let mut cb = Plane::new(cd.0, cd.1);
    let mut cr = Plane::new(cd.0, cd.1);
    for py in 0..h {
        for px in 0..w {
            let c = frame.pixel(px, py);
            let yy = 0.299 * c.r() + 0.587 * c.g() + 0.114 * c.b();
            y.set(px, py, yy);
        }
    }
    for cy in 0..cd.1 {
        for cx in 0..cd.0 {
            // Average the 2x2 neighbourhood.
            let mut sb = 0.0;
            let mut sr = 0.0;
            let mut n = 0.0;
            for dy in 0..2 {
                for dx in 0..2 {
                    let (px, py) = (cx * 2 + dx, cy * 2 + dy);
                    if px < w && py < h {
                        let c = frame.pixel(px, py);
                        let yy = 0.299 * c.r() + 0.587 * c.g() + 0.114 * c.b();
                        sb += 0.564 * (c.b() - yy);
                        sr += 0.713 * (c.r() - yy);
                        n += 1.0;
                    }
                }
            }
            cb.set(cx, cy, sb / n);
            cr.set(cx, cy, sr / n);
        }
    }
    [y, cb, cr]
}

/// Y'CbCr 4:2:0 → RGB (alpha forced to 1).
fn from_ycbcr_420(w: u32, h: u32, planes: &[Plane]) -> Framebuffer {
    let mut fb = Framebuffer::new(w, h, Rgba::BLACK);
    for py in 0..h {
        for px in 0..w {
            let y = planes[0].at(px, py);
            let cb = planes[1].at(px / 2, py / 2);
            let cr = planes[2].at(px / 2, py / 2);
            let r = y + 1.403 * cr;
            let g = y - 0.344 * cb - 0.714 * cr;
            let b = y + 1.773 * cb;
            fb.set_pixel(
                px,
                py,
                Rgba::new(r.clamp(0.0, 1.0), g.clamp(0.0, 1.0), b.clamp(0.0, 1.0), 1.0),
            );
        }
    }
    fb
}

/// Forward 8×8 DCT-II (straightforward O(n⁴) per block; blocks are tiny).
fn dct8x8(block: &[f32; 64]) -> [f32; 64] {
    let mut out = [0.0f32; 64];
    for v in 0..8 {
        for u in 0..8 {
            let cu = if u == 0 {
                std::f32::consts::FRAC_1_SQRT_2
            } else {
                1.0
            };
            let cv = if v == 0 {
                std::f32::consts::FRAC_1_SQRT_2
            } else {
                1.0
            };
            let mut sum = 0.0;
            for y in 0..8 {
                for x in 0..8 {
                    sum += block[y * 8 + x]
                        * (((2 * x + 1) as f32) * (u as f32) * std::f32::consts::PI / 16.0).cos()
                        * (((2 * y + 1) as f32) * (v as f32) * std::f32::consts::PI / 16.0).cos();
                }
            }
            out[v * 8 + u] = 0.25 * cu * cv * sum;
        }
    }
    out
}

/// Inverse 8×8 DCT-II.
fn idct8x8(coeff: &[f32; 64]) -> [f32; 64] {
    let mut out = [0.0f32; 64];
    for y in 0..8 {
        for x in 0..8 {
            let mut sum = 0.0;
            for v in 0..8 {
                for u in 0..8 {
                    let cu = if u == 0 {
                        std::f32::consts::FRAC_1_SQRT_2
                    } else {
                        1.0
                    };
                    let cv = if v == 0 {
                        std::f32::consts::FRAC_1_SQRT_2
                    } else {
                        1.0
                    };
                    sum += cu
                        * cv
                        * coeff[v * 8 + u]
                        * (((2 * x + 1) as f32) * (u as f32) * std::f32::consts::PI / 16.0).cos()
                        * (((2 * y + 1) as f32) * (v as f32) * std::f32::consts::PI / 16.0).cos();
                }
            }
            out[y * 8 + x] = 0.25 * sum;
        }
    }
    out
}

/// Marker for an entirely skipped (inter-predicted) block.
const BLOCK_SKIP: u8 = 0xFF;
/// Marker for a coded block; followed by RLE pairs and END.
const BLOCK_CODED: u8 = 0xFE;
/// End-of-block marker inside RLE data.
const RLE_END: u8 = 0xFD;

fn encode_plane(plane: &Plane, reference: Option<&Plane>, scale: f32, out: &mut BytesMut) {
    let bw = plane.w.div_ceil(8);
    let bh = plane.h.div_ceil(8);
    for by in 0..bh {
        for bx in 0..bw {
            // Gather the (residual) block.
            let mut block = [0.0f32; 64];
            let mut energy = 0.0f32;
            for y in 0..8 {
                for x in 0..8 {
                    let (px, py) = (bx * 8 + x, by * 8 + y);
                    let v = plane.at(px, py) - reference.map_or(0.0, |r| r.at(px, py));
                    block[(y * 8 + x) as usize] = v;
                    energy += v * v;
                }
            }
            // Inter skip: residual below threshold.
            if reference.is_some() && energy < 1e-4 {
                out.put_u8(BLOCK_SKIP);
                continue;
            }
            out.put_u8(BLOCK_CODED);
            let coeffs = dct8x8(&block);
            // Quantise, zigzag, RLE + VLC.
            let mut run = 0u8;
            for (zi, &src) in ZIGZAG.iter().enumerate() {
                let q = (coeffs[src] * 255.0 / (QUANT_BASE[zi] * scale)).round() as i32;
                if q == 0 {
                    run = run.saturating_add(1);
                } else {
                    out.put_u8(run.min(252));
                    put_vlc(out, q);
                    run = 0;
                }
            }
            out.put_u8(RLE_END);
        }
    }
}

fn decode_plane(
    w: u32,
    h: u32,
    reference: Option<&Plane>,
    scale: f32,
    payload: &mut Bytes,
) -> Result<Plane, CodecError> {
    let mut plane = Plane::new(w, h);
    let bw = w.div_ceil(8);
    let bh = h.div_ceil(8);
    for by in 0..bh {
        for bx in 0..bw {
            if payload.remaining() < 1 {
                return Err(CodecError::Truncated);
            }
            let marker = payload.get_u8();
            let mut block = [0.0f32; 64];
            match marker {
                BLOCK_SKIP => {}
                BLOCK_CODED => {
                    let mut coeffs = [0.0f32; 64];
                    let mut zi = 0usize;
                    loop {
                        if payload.remaining() < 1 {
                            return Err(CodecError::Truncated);
                        }
                        let run = payload.get_u8();
                        if run == RLE_END {
                            break;
                        }
                        zi += run as usize;
                        if zi >= 64 {
                            return Err(CodecError::Truncated);
                        }
                        let q = get_vlc(payload)?;
                        coeffs[ZIGZAG[zi]] = q as f32 * (QUANT_BASE[zi] * scale) / 255.0;
                        zi += 1;
                    }
                    block = idct8x8(&coeffs);
                }
                _ => return Err(CodecError::Truncated),
            }
            for y in 0..8 {
                for x in 0..8 {
                    let (px, py) = (bx * 8 + x, by * 8 + y);
                    let base = reference.map_or(0.0, |r| r.at(px, py));
                    plane.set(px, py, base + block[(y * 8 + x) as usize]);
                }
            }
        }
    }
    Ok(plane)
}

/// Signed variable-length coding: zigzag-map to unsigned, then LEB128-ish.
fn put_vlc(out: &mut BytesMut, v: i32) {
    let mut u = ((v << 1) ^ (v >> 31)) as u32;
    loop {
        let byte = (u & 0x7F) as u8;
        u >>= 7;
        if u == 0 {
            out.put_u8(byte);
            break;
        }
        out.put_u8(byte | 0x80);
    }
}

fn get_vlc(payload: &mut Bytes) -> Result<i32, CodecError> {
    let mut u: u32 = 0;
    let mut shift = 0;
    loop {
        if payload.remaining() < 1 {
            return Err(CodecError::Truncated);
        }
        let byte = payload.get_u8();
        let group = u32::from(byte & 0x7F);
        // The fifth group can only carry the top 4 bits of a u32; a larger
        // value is a corrupt stream (and would overflow the shift below).
        if shift == 28 && group > 0x0F {
            return Err(CodecError::Truncated);
        }
        u |= group << shift;
        if byte & 0x80 == 0 {
            break;
        }
        shift += 7;
        if shift > 28 {
            return Err(CodecError::Truncated);
        }
    }
    Ok((u >> 1) as i32 ^ -((u & 1) as i32))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qvr_gpu::Texture;

    /// Game-like content: a master value-noise field drives all channels in
    /// a correlated way (real frames have luma-dominated detail, not
    /// independent per-pixel chroma noise, which 4:2:0 subsampling would
    /// destroy regardless of codec quality).
    fn textured_frame(size: u32, roughness: f64, seed: u64) -> Framebuffer {
        let tex = Texture::value_noise(size, seed, roughness);
        let mut fb = Framebuffer::new(size, size, Rgba::BLACK);
        for y in 0..size {
            for x in 0..size {
                let v = tex.fetch(i64::from(x), i64::from(y)).r();
                fb.set_pixel(
                    x,
                    y,
                    Rgba::new(v, v * 0.7 + 0.15, (1.0 - v) * 0.4 + 0.3 * v, 1.0),
                );
            }
        }
        fb
    }

    #[test]
    fn dct_roundtrip_is_lossless() {
        let mut block = [0.0f32; 64];
        for (i, v) in block.iter_mut().enumerate() {
            *v = ((i * 7) % 13) as f32 / 13.0 - 0.5;
        }
        let back = idct8x8(&dct8x8(&block));
        for i in 0..64 {
            assert!((block[i] - back[i]).abs() < 1e-4, "index {i}");
        }
    }

    #[test]
    fn vlc_roundtrip() {
        let mut buf = BytesMut::new();
        let values = [0, 1, -1, 5, -128, 300, -70_000, i32::MAX / 4];
        for v in values {
            put_vlc(&mut buf, v);
        }
        let mut b = buf.freeze();
        for v in values {
            assert_eq!(get_vlc(&mut b).unwrap(), v);
        }
    }

    #[test]
    fn intra_roundtrip_high_quality() {
        let frame = crate::test_content::game_frame(64, 0.3, 1);
        let codec = TransformCodec::new(0.9);
        let enc = codec.encode_intra(&frame);
        let dec = codec.decode(&enc).unwrap();
        let psnr = dec.psnr(&frame);
        assert!(psnr > 30.0, "PSNR {psnr}");
    }

    #[test]
    fn quality_trades_size_for_psnr() {
        let frame = textured_frame(64, 0.5, 2);
        let hi = TransformCodec::new(0.9);
        let lo = TransformCodec::new(0.2);
        let enc_hi = hi.encode_intra(&frame);
        let enc_lo = lo.encode_intra(&frame);
        assert!(enc_hi.size_bytes() > enc_lo.size_bytes());
        let psnr_hi = hi.decode(&enc_hi).unwrap().psnr(&frame);
        let psnr_lo = lo.decode(&enc_lo).unwrap().psnr(&frame);
        assert!(psnr_hi > psnr_lo);
    }

    #[test]
    fn detailed_content_is_larger() {
        let smooth = textured_frame(64, 0.05, 3);
        let rough = textured_frame(64, 0.9, 3);
        let codec = TransformCodec::default();
        assert!(
            codec.encode_intra(&rough).size_bytes() > 2 * codec.encode_intra(&smooth).size_bytes()
        );
    }

    #[test]
    fn flat_frame_compresses_brutally() {
        let frame = Framebuffer::new(64, 64, Rgba::new(0.4, 0.4, 0.4, 1.0));
        let codec = TransformCodec::default();
        let enc = codec.encode_intra(&frame);
        // 64x64 RGBA floats are 64 KB as RGBA8; flat content must compress
        // by >40x.
        assert!(
            enc.size_bytes() < 1_000,
            "flat frame {} bytes",
            enc.size_bytes()
        );
    }

    #[test]
    fn inter_mode_exploits_coherence() {
        let a = crate::test_content::game_frame(64, 0.4, 4);
        // Small change: copy and perturb one corner block.
        let mut b = a.clone();
        for y in 0..8 {
            for x in 0..8 {
                b.set_pixel(x, y, Rgba::WHITE);
            }
        }
        let codec = TransformCodec::default();
        let intra = codec.encode_intra(&b);
        let inter = codec.encode_inter(&b, &a);
        assert!(
            inter.size_bytes() < intra.size_bytes() / 4,
            "inter {} vs intra {}",
            inter.size_bytes(),
            intra.size_bytes()
        );
        let dec = codec.decode_with_reference(&inter, &a).unwrap();
        assert!(dec.psnr(&b) > 28.0, "psnr {}", dec.psnr(&b));
    }

    #[test]
    fn inter_without_reference_fails() {
        let a = textured_frame(16, 0.5, 5);
        let codec = TransformCodec::default();
        let enc = codec.encode_inter(&a, &a);
        assert_eq!(codec.decode(&enc), Err(CodecError::MissingReference));
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let frame = textured_frame(32, 0.5, 6);
        let codec = TransformCodec::default();
        let mut enc = codec.encode_intra(&frame);
        enc.payload = enc.payload.slice(0..enc.payload.len() / 2);
        assert!(matches!(codec.decode(&enc), Err(CodecError::Truncated)));
    }

    #[test]
    fn non_multiple_of_8_dimensions() {
        let mut fb = Framebuffer::new(37, 29, Rgba::new(0.2, 0.6, 0.4, 1.0));
        for y in 0..29 {
            for x in 0..37 {
                let v = (x as f32 / 37.0 + y as f32 / 29.0) / 2.0;
                fb.set_pixel(x, y, Rgba::new(v, 1.0 - v, v * v, 1.0));
            }
        }
        let codec = TransformCodec::new(0.8);
        let dec = codec.decode(&codec.encode_intra(&fb)).unwrap();
        assert_eq!(dec.width(), 37);
        assert_eq!(dec.height(), 29);
        assert!(dec.psnr(&fb) > 28.0, "psnr {}", dec.psnr(&fb));
    }

    #[test]
    fn compression_ratio_in_h264_ballpark() {
        // The paper's backgrounds compress ~20:1 (12.4 MB raw -> ~0.6 MB).
        // Our transform codec on game-like content should land in the same
        // order of magnitude (vs RGBA8 raw size).
        let frame = crate::test_content::game_frame(128, 0.45, 7);
        let codec = TransformCodec::default();
        let enc = codec.encode_intra(&frame);
        let raw = 128.0 * 128.0 * 4.0;
        let ratio = raw / enc.size_bytes() as f64;
        assert!((5.0..60.0).contains(&ratio), "compression ratio {ratio}");
    }

    #[test]
    fn error_display() {
        assert_eq!(CodecError::Truncated.to_string(), "bitstream truncated");
    }

    /// Every strict prefix of a valid bitstream must decode to a clean
    /// `Truncated` error — a cut stream can never panic or over-read.
    #[test]
    fn all_truncations_are_rejected() {
        let a = crate::test_content::game_frame(16, 0.7, 21);
        let b = crate::test_content::game_frame(16, 0.7, 22);
        let codec = TransformCodec::default();
        let intra = codec.encode_intra(&a);
        let inter = codec.encode_inter(&b, &a);
        for n in 0..intra.payload.len() {
            let mut cut = intra.clone();
            cut.payload = cut.payload.slice(0..n);
            assert_eq!(codec.decode(&cut), Err(CodecError::Truncated), "prefix {n}");
        }
        for n in 0..inter.payload.len() {
            let mut cut = inter.clone();
            cut.payload = cut.payload.slice(0..n);
            assert_eq!(
                codec.decode_with_reference(&cut, &a),
                Err(CodecError::Truncated),
                "inter prefix {n}"
            );
        }
    }

    /// Flipping any single bit of the payload must yield either a decoded
    /// frame or a `CodecError` — never a panic. Exercises every byte
    /// position with a position-dependent bit, then sweeps the marker bytes
    /// that steer the block parser.
    #[test]
    fn bit_flips_never_panic() {
        let a = crate::test_content::game_frame(16, 0.7, 23);
        let b = crate::test_content::game_frame(16, 0.7, 24);
        let codec = TransformCodec::default();
        let intra = codec.encode_intra(&a);
        let inter = codec.encode_inter(&b, &a);
        for (enc, reference) in [(&intra, None), (&inter, Some(&a))] {
            let base = enc.payload.as_slice().to_vec();
            for i in 0..base.len() {
                let mut mutants = vec![base.clone(); 4];
                mutants[0][i] ^= 1 << (i % 8);
                mutants[1][i] = BLOCK_SKIP;
                mutants[2][i] = BLOCK_CODED;
                mutants[3][i] = RLE_END;
                for m in mutants {
                    let mut e = enc.clone();
                    e.payload = Bytes::copy_from_slice(&m);
                    // Ok or Err are both acceptable; the assertion is the
                    // absence of a panic or over-read.
                    let _ = match reference {
                        Some(r) => codec.decode_with_reference(&e, r),
                        None => codec.decode(&e),
                    };
                }
            }
        }
    }

    /// A maximal VLC continuation chain whose fifth group carries more than
    /// the 4 bits a u32 has left must be rejected, not overflow the shift
    /// (regression: panicked under `-C overflow-checks` before the guard).
    #[test]
    fn vlc_overflow_is_rejected_not_panicking() {
        let enc = EncodedFrame {
            inter: false,
            width: 8,
            height: 8,
            payload: Bytes::copy_from_slice(&[BLOCK_CODED, 0, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F]),
        };
        let codec = TransformCodec::default();
        assert_eq!(codec.decode(&enc), Err(CodecError::Truncated));
    }
}
