//! Encode/decode latency models for hardware video engines.
//!
//! Fig. 4 models video decoding (VD) as its own accelerator that overlaps
//! with network reception and remote rendering. Hardware codecs process
//! pixels at a rate essentially independent of content; we model throughput
//! in pixels/ms plus a fixed per-frame setup cost.

use std::fmt;

/// Throughput/latency model for a hardware video encoder + decoder pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodecLatencyModel {
    encode_px_per_ms: f64,
    decode_px_per_ms: f64,
    fixed_ms: f64,
}

impl CodecLatencyModel {
    /// Creates a model from encode/decode throughputs (pixels per
    /// millisecond) and fixed per-frame setup latency (ms).
    ///
    /// # Panics
    ///
    /// Panics if a throughput is non-positive or the fixed cost is negative.
    #[must_use]
    pub fn new(encode_px_per_ms: f64, decode_px_per_ms: f64, fixed_ms: f64) -> Self {
        assert!(
            encode_px_per_ms > 0.0 && decode_px_per_ms > 0.0,
            "throughputs must be positive"
        );
        assert!(fixed_ms >= 0.0, "fixed cost must be non-negative");
        CodecLatencyModel {
            encode_px_per_ms,
            decode_px_per_ms,
            fixed_ms,
        }
    }

    /// A mobile-SoC hardware codec: ~4K@240 decode, 4K@120 encode class
    /// (server-side NVENC-class encoder assumed symmetric or better).
    #[must_use]
    pub fn mobile_soc() -> Self {
        // 3840*2160 = 8.3 MP; 240 fps decode -> ~2000 px/us = 2.0 M px/ms.
        CodecLatencyModel::new(1_000_000.0, 2_000_000.0, 0.3)
    }

    /// Encode latency for `pixels`, ms.
    #[must_use]
    pub fn encode_ms(&self, pixels: f64) -> f64 {
        self.fixed_ms + pixels.max(0.0) / self.encode_px_per_ms
    }

    /// Decode latency for `pixels`, ms.
    #[must_use]
    pub fn decode_ms(&self, pixels: f64) -> f64 {
        self.fixed_ms + pixels.max(0.0) / self.decode_px_per_ms
    }
}

impl Default for CodecLatencyModel {
    fn default() -> Self {
        CodecLatencyModel::mobile_soc()
    }
}

impl fmt::Display for CodecLatencyModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "enc {:.1} Mpx/ms, dec {:.1} Mpx/ms, +{:.1} ms fixed",
            self.encode_px_per_ms / 1e6,
            self.decode_px_per_ms / 1e6,
            self.fixed_ms
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_eye_decodes_within_frame_budget() {
        // A full 1920x2160 eye must decode well under 11 ms (90 Hz), or the
        // VD stage would dominate Fig. 4's pipeline, which it does not.
        let m = CodecLatencyModel::mobile_soc();
        let t = m.decode_ms(1920.0 * 2160.0);
        assert!(t < 5.0, "decode {t} ms");
    }

    #[test]
    fn decode_faster_than_encode_on_mobile() {
        let m = CodecLatencyModel::mobile_soc();
        let px = 1_000_000.0;
        assert!(m.decode_ms(px) < m.encode_ms(px));
    }

    #[test]
    fn latency_monotone_in_pixels() {
        let m = CodecLatencyModel::default();
        assert!(m.decode_ms(2e6) > m.decode_ms(1e6));
        assert!(m.encode_ms(2e6) > m.encode_ms(1e6));
    }

    #[test]
    fn zero_pixels_costs_fixed_only() {
        let m = CodecLatencyModel::new(1e6, 1e6, 0.25);
        assert!((m.decode_ms(0.0) - 0.25).abs() < 1e-12);
        assert!(
            (m.encode_ms(-5.0) - 0.25).abs() < 1e-12,
            "negative clamps to zero"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bad_throughput_rejected() {
        let _ = CodecLatencyModel::new(0.0, 1.0, 0.0);
    }

    #[test]
    fn display_format() {
        assert!(CodecLatencyModel::default().to_string().contains("Mpx/ms"));
    }
}
