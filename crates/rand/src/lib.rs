//! Offline stand-in for the subset of the `rand` crate API this workspace
//! uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, `Rng::gen_range`
//! (half-open float/integer ranges) and `Rng::gen_bool`.
//!
//! The build environment has no registry access, so the real `rand` cannot
//! be fetched; this crate keeps the call sites source-compatible. The
//! generator is xoshiro256++ seeded through SplitMix64 — a different stream
//! than the real `StdRng` (ChaCha12), which is fine: the workspace only
//! relies on *determinism per seed*, never on specific draw values.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Seedable generators (API-compatible subset).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Value types samplable from a half-open [`Range`] by [`Rng::gen_range`].
pub trait SampleUniform: PartialOrd + Copy {
    /// Samples uniformly from `[low, high)`.
    fn sample_half_open(rng: &mut dyn RngCore, low: Self, high: Self) -> Self;
}

impl SampleUniform for f64 {
    fn sample_half_open(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
        // Guard the upper bound: at large magnitudes `low + u * (high - low)`
        // can round to exactly `high`; wrap that boundary case to `low`.
        let v = low + rng.next_f64() * (high - low);
        if v >= high {
            low
        } else {
            v
        }
    }
}

impl SampleUniform for f32 {
    fn sample_half_open(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
        // Compute in f64 and guard the cast: a draw just below 1.0 can
        // round up to `high` in f32, which would violate the half-open
        // contract; wrap that boundary case to `low`.
        let v = (f64::from(low) + rng.next_f64() * (f64::from(high) - f64::from(low))) as f32;
        if v >= high {
            low
        } else {
            v
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn sample_half_open(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
                let span = (high as i128 - low as i128) as u128;
                let draw = (u128::from(rng.next_u64()) % span.max(1)) as i128;
                (low as i128 + draw) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The raw 64-bit source behind [`Rng`].
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Next float uniform in `[0, 1)` (53-bit precision).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// High-level sampling helpers (API-compatible subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range `low..high`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        assert!(range.start < range.end, "gen_range called with empty range");
        T::sample_half_open(self, range.start, range.end)
    }

    /// Bernoulli sample: `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.next_f64() < p.clamp(0.0, 1.0)
    }
}

impl<T: RngCore> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand`'s StdRng).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0.0..1.0), b.gen_range(0.0..1.0));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<f64> = (0..8).map(|_| a.gen_range(0.0..1.0)).collect();
        let vb: Vec<f64> = (0..8).map(|_| b.gen_range(0.0..1.0)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&v));
        }
        for _ in 0..10_000 {
            let v: u32 = rng.gen_range(5..9);
            assert!((5..9).contains(&v));
        }
    }

    #[test]
    fn floats_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / f64::from(n);
        assert!((0.49..0.51).contains(&mean), "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((0.28..0.32).contains(&rate), "rate {rate}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_rejected() {
        let mut rng = StdRng::seed_from_u64(6);
        let _ = rng.gen_range(1.0..1.0);
    }
}
