//! # Q-VR: collaborative mobile VR rendering (ASPLOS '21 reproduction)
//!
//! A full-system reproduction of *Q-VR: System-Level Design for Future
//! Mobile Collaborative Virtual Reality* (Xie, Li, Hu, Peng, Taylor, Song —
//! ASPLOS 2021): a software–hardware co-design that splits each VR frame
//! between the mobile headset (a high-resolution **fovea** around the gaze)
//! and a remote server (MAR-constrained low-resolution **periphery**
//! streamed back as video), balanced per frame by a tiny learned controller
//! (**LIWC**) and composed off-GPU by a fused composition+timewarp unit
//! (**UCA**).
//!
//! The original evaluation ran on a modified cycle-level GPU simulator with
//! commercial game traces and physical network hardware; this workspace
//! rebuilds every substrate in Rust. See `DESIGN.md` for the substitution
//! map and `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! ## Crate map
//!
//! | Module (re-export) | Crate | Provides |
//! |---|---|---|
//! | [`hvs`] | `qvr-hvs` | MAR acuity model, layer partition, perception survey |
//! | [`gpu`] | `qvr-gpu` | software rasterizer + tile-based GPU timing model |
//! | [`scene`] | `qvr-scene` | the 12 app profiles, motion/gaze traces |
//! | [`codec`] | `qvr-codec` | DCT transform codec + compressed-size model |
//! | [`net`] | `qvr-net` | Wi-Fi/LTE/5G channels with SNR jitter + ACK monitor |
//! | [`sim`] | `qvr-sim` | discrete-event multi-accelerator pipeline engine |
//! | [`energy`] | `qvr-energy` | power models + Sec. 4.3 overhead figures |
//! | [`core`] | `qvr-core` | LIWC, UCA, foveation framework, the 7 schemes |
//!
//! ## Quickstart
//!
//! ```
//! use qvr::prelude::*;
//!
//! // Run 60 frames of GRID under full Q-VR and under the local baseline.
//! let config = SystemConfig::default();
//! let qvr = SchemeKind::Qvr.run(&config, Benchmark::Grid.profile(), 60, 42);
//! let base = SchemeKind::LocalOnly.run(&config, Benchmark::Grid.profile(), 60, 42);
//!
//! // Q-VR slashes motion-to-photon latency on heavy scenes.
//! assert!(qvr.mean_mtp_ms() < base.mean_mtp_ms() / 2.0);
//! println!("speedup: {:.1}x", base.mean_mtp_ms() / qvr.mean_mtp_ms());
//! ```
//!
//! ## Multi-tenant fleets
//!
//! The collaborative regime the paper targets — many headsets behind one
//! multi-GPU server and one wireless link — is a [`prelude::Fleet`]: N
//! sessions stepped round-robin against a shared server pool and a shared
//! channel budget, with tail-latency and fairness aggregates.
//!
//! ```
//! use qvr::prelude::*;
//!
//! // 8 Q-VR users share the default 8-GPU server and one Wi-Fi link.
//! let fleet = FleetConfig::uniform(
//!     SystemConfig::default(),
//!     SchemeKind::Qvr,
//!     Benchmark::Hl2H.profile(),
//!     8,   // sessions
//!     40,  // frames each
//!     42,  // seed
//! );
//! let summary = Fleet::run(fleet);
//! assert_eq!(summary.len(), 8);
//! println!("p95 MTP {:.1} ms, FPS floor {:.0}", summary.mtp_p95_ms, summary.fps_floor);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use qvr_codec as codec;
pub use qvr_core as core;
pub use qvr_energy as energy;
pub use qvr_gpu as gpu;
pub use qvr_hvs as hvs;
pub use qvr_net as net;
pub use qvr_scene as scene;
pub use qvr_sim as sim;

/// The items most programs need, in one import.
pub mod prelude {
    pub use qvr_codec::{
        CodecLatencyModel, EntropyModel, RateControlConfig, RateController, SizeModel,
        TransformCodec,
    };
    pub use qvr_core::admission::{AdmissionController, AdmissionDecision, AdmissionPolicy};
    pub use qvr_core::churn::{
        ChurnConfig, ChurnEvent, ChurnEventKind, ChurnFleet, ChurnSummary, ChurnTrace, TenantRecord,
    };
    pub use qvr_core::clock::{FleetClock, SteppingPolicy};
    pub use qvr_core::fleet::{Fleet, FleetConfig, FleetSummary, SessionSpec};
    pub use qvr_core::metrics::{FrameRecord, Histogram, RunSummary};
    pub use qvr_core::obs::{
        parse_exposition, HealthMonitor, HealthRuleKind, HealthRules, Incident, MetricsSink,
        Severity, TraceConfig, TraceSink,
    };
    pub use qvr_core::sched::{ServerPolicy, TenantClass};
    pub use qvr_core::schemes::{SchemeKind, SystemConfig};
    pub use qvr_core::session::Session;
    pub use qvr_core::shard::{cell_seed, CellSummary, Shard, ShardConfig, ShardSummary};
    pub use qvr_core::telemetry::{
        AggregateSink, EnergyMeter, FrameEvent, FrameSpans, LoadTracker, SinkSet, StageSpan,
        TelemetryConfig, TelemetrySink, WindowedStatsSink,
    };
    pub use qvr_core::{FoveationPlan, Liwc, RenderGraph, Uca, VrsRate};
    pub use qvr_energy::{
        overhead::LiwcOverhead, overhead::UcaOverhead, ApPowerModel, FleetEnergy, PowerModel,
        ServerPowerModel,
    };
    pub use qvr_gpu::{FrameWorkload, GpuConfig, GpuTimingModel, RemoteGpuModel};
    pub use qvr_hvs::{DisplayGeometry, GazePoint, LayerPartition, MarModel, PerceptionModel};
    pub use qvr_net::{FairnessPolicy, LinkShare, NetworkChannel, NetworkPreset, SharedChannel};
    pub use qvr_scene::{AppProfile, AppSession, Benchmark, CharacterizationApp};
}
