//! Admission-control integration tests: determinism (same seed ⇒ same
//! admit/reject sequence) and SLO monotonicity (tightening the SLO can only
//! demote decisions at the point of divergence and never admits a strict
//! superset of sessions).

use qvr::prelude::*;
use qvr::scene::Benchmark;

/// A mixed candidate stream: four apps round-robin, every third station a
/// cell-edge (half-rate MCS) tenant.
fn candidate(i: usize) -> SessionSpec {
    let apps = [
        Benchmark::Hl2H,
        Benchmark::Doom3H,
        Benchmark::Wolf,
        Benchmark::Ut3,
    ];
    let spec = SessionSpec::new(SchemeKind::Qvr, apps[i % apps.len()].profile());
    if i % 3 == 2 {
        spec.with_share(LinkShare::default().with_mcs_efficiency(0.5))
    } else {
        spec
    }
}

fn policy(p95_slo_ms: f64, fps_floor: f64) -> AdmissionPolicy {
    let mut p = AdmissionPolicy::default()
        .with_mtp_p95_slo_ms(p95_slo_ms)
        .with_min_fps_floor(fps_floor);
    p.probe_frames = 4;
    p
}

fn run_controller(
    fairness: FairnessPolicy,
    policy: AdmissionPolicy,
    seed: u64,
    offers: usize,
) -> AdmissionController {
    let mut c = AdmissionController::new(SystemConfig::default(), fairness, policy, seed);
    c.offer_all((0..offers).map(candidate));
    c
}

#[test]
fn same_seed_gives_the_same_admission_sequence() {
    for fairness in FairnessPolicy::all() {
        let a = run_controller(fairness, policy(26.0, 70.0), 42, 8);
        let b = run_controller(fairness, policy(26.0, 70.0), 42, 8);
        assert_eq!(a.decisions(), b.decisions(), "{fairness}");
        assert_eq!(a.admitted().len(), b.admitted().len(), "{fairness}");
        for (x, y) in a.admitted().iter().zip(b.admitted()) {
            assert_eq!(x.share, y.share, "{fairness}: admitted shares must match");
        }
        assert_eq!(a.protected(), b.protected(), "{fairness}");
    }
}

#[test]
fn different_seeds_may_disagree_but_both_hold_their_slo() {
    let a = run_controller(FairnessPolicy::Weighted, policy(26.0, 70.0), 1, 8);
    let b = run_controller(FairnessPolicy::Weighted, policy(26.0, 70.0), 2, 8);
    for c in [&a, &b] {
        if let Some((p95, floor)) = c.protected_metrics() {
            assert!(p95 <= 26.0, "protected p95 {p95:.1} must hold the SLO");
            assert!(
                floor >= 70.0,
                "protected floor {floor:.0} must hold the SLO"
            );
        }
    }
}

#[test]
fn tightening_the_slo_only_demotes_at_the_first_divergence() {
    // Reject-only control so the decision rule's pointwise monotonicity is
    // directly observable: up to the first divergent offer both controllers
    // hold identical rosters, so the probes are identical, and the stricter
    // SLO can only turn that offer's Admit into a Reject.
    let loose = policy(30.0, 60.0).reject_only();
    let tight = policy(24.0, 75.0).reject_only();
    assert!(tight.tightens(&loose));
    let l = run_controller(FairnessPolicy::EqualShare, loose, 42, 10);
    let t = run_controller(FairnessPolicy::EqualShare, tight, 42, 10);
    let first_divergence = l
        .decisions()
        .iter()
        .zip(t.decisions())
        .position(|(dl, dt)| dl != dt);
    if let Some(i) = first_divergence {
        assert_eq!(
            l.decisions()[i],
            AdmissionDecision::Admitted,
            "at the first divergence the looser SLO must be the one admitting"
        );
        assert_eq!(
            t.decisions()[i],
            AdmissionDecision::Rejected,
            "at the first divergence the tighter SLO must be the one rejecting"
        );
    } else {
        // No divergence at all is legal (the SLO gap never bound); the
        // sequences must then be identical.
        assert_eq!(l.decisions(), t.decisions());
    }
}

#[test]
fn tightening_the_slo_never_admits_a_superset() {
    // After the first divergence the rosters differ, so later decisions may
    // go either way — but the tighter controller can never end up having
    // admitted a strict superset of the looser one's sessions.
    for (fairness, seed) in [
        (FairnessPolicy::EqualShare, 42u64),
        (FairnessPolicy::Weighted, 42),
        (FairnessPolicy::Airtime, 7),
    ] {
        let loose = policy(30.0, 60.0).reject_only();
        let tight = policy(24.0, 75.0).reject_only();
        let l = run_controller(fairness, loose, seed, 10);
        let t = run_controller(fairness, tight, seed, 10);
        let joined = |c: &AdmissionController| -> Vec<usize> {
            c.decisions()
                .iter()
                .enumerate()
                .filter(|(_, d)| d.joined())
                .map(|(i, _)| i)
                .collect()
        };
        let lj = joined(&l);
        let tj = joined(&t);
        let strict_superset = tj.len() > lj.len() && lj.iter().all(|i| tj.contains(i));
        assert!(
            !strict_superset,
            "{fairness}: tight SLO admitted a strict superset: {tj:?} over {lj:?}"
        );
        assert!(
            tj.len() <= l.offered(),
            "sanity: decisions cover every offer"
        );
    }
}

#[test]
fn admitted_fleet_config_reruns_deterministically() {
    // The controller's final roster must itself be a deterministic fleet:
    // running it twice gives bit-identical summaries (the property the
    // whole probe-based scheme relies on).
    let c = run_controller(FairnessPolicy::Weighted, policy(28.0, 60.0), 42, 8);
    let config = c.fleet_config(12).expect("something must admit");
    let a = Fleet::run(config.clone());
    let b = Fleet::run(config);
    assert_eq!(a, b);
}
