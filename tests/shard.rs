//! Sharded-cell integration tests: the 1-cell shard degenerates to a
//! single fleet bit-for-bit, the merged summary is identical for every
//! worker count, live memory stays O(cells × window), spill admission
//! routes degraded joiners to the least-loaded cell, churn fleets merge
//! through the same seam, and the re-aggregation energy bug stays fixed.

use qvr::prelude::*;
use qvr::scene::Benchmark;

fn mixed_spec(i: usize) -> SessionSpec {
    let apps = [
        Benchmark::Hl2H,
        Benchmark::Doom3H,
        Benchmark::Wolf,
        Benchmark::Ut3,
    ];
    SessionSpec::new(SchemeKind::Qvr, apps[i % apps.len()].profile())
}

fn template(frames: usize, seed: u64) -> FleetConfig {
    let mut t = FleetConfig::uniform(
        SystemConfig::default(),
        SchemeKind::Qvr,
        Benchmark::Hl2H.profile(),
        1, // placeholder: the shard routes its own roster
        frames,
        seed,
    );
    t.server_units = 4;
    t.link_streams = 2;
    t
}

#[test]
fn one_cell_shard_is_bit_identical_to_the_fleet() {
    // The acceptance contract: a 1-cell shard over an identical roster is
    // the same simulation as a single fleet — same seed (cell 0's seed is
    // the shard seed), same streams, same telemetry — so every merged
    // aggregate must match `Fleet::run` with `==`, no tolerance. The shard
    // runs its windowed sink deferred and the fleet streams closes, so
    // this also pins deferred-mode parity end to end.
    let mut fleet_config = template(30, 42);
    fleet_config.sessions = (0..6).map(mixed_spec).collect();
    fleet_config.telemetry = fleet_config.telemetry.with_window_ms(150.0);
    let fleet = Fleet::run(fleet_config.clone());

    let shard = Shard::run(ShardConfig::new(
        fleet_config.clone(),
        1,
        6,
        fleet_config.sessions.clone(),
    ));
    assert_eq!(shard.cells, 1);
    assert_eq!(shard.sessions, 6);
    assert!(
        shard.matches_fleet(&fleet),
        "1-cell shard must degenerate to the fleet bit-for-bit:\n  \
         shard p50/p95/p99 {}/{}/{} util {} energy {:.6} mJ\n  \
         fleet p50/p95/p99 {}/{}/{} util {} energy {:.6} mJ",
        shard.mtp_p50_ms,
        shard.mtp_p95_ms,
        shard.mtp_p99_ms,
        shard.server_utilization,
        shard.energy.total_mj(),
        fleet.mtp_p50_ms,
        fleet.mtp_p95_ms,
        fleet.mtp_p99_ms,
        fleet.server_utilization,
        fleet.energy.total_mj(),
    );
    assert_eq!(shard.windows, fleet.windows, "windowed timelines match");
}

#[test]
fn one_cell_shard_matches_fleet_with_rate_control_on() {
    // The same degeneracy contract with the closed-loop rate controller
    // active: controller state lives inside each session's stepper, so a
    // 1-cell shard's per-slot controllers see exactly the fleet's frame
    // order and the merged summary still compares with `==`.
    let mut fleet_config = template(30, 42).with_rate_control(RateControlConfig::on());
    fleet_config.sessions = (0..6).map(mixed_spec).collect();
    fleet_config.telemetry = fleet_config.telemetry.with_window_ms(150.0);
    let fleet = Fleet::run(fleet_config.clone());

    let shard = Shard::run(ShardConfig::new(
        fleet_config.clone(),
        1,
        6,
        fleet_config.sessions.clone(),
    ));
    assert!(
        shard.matches_fleet(&fleet),
        "rate-controlled 1-cell shard must still degenerate to the fleet"
    );
    assert_eq!(shard.windows, fleet.windows, "windowed timelines match");
}

#[test]
fn shard_summary_is_identical_across_worker_counts() {
    // The determinism contract that replaces wall-clock scaling curves on
    // 1-CPU CI: cells only talk through the telemetry seam and the merge
    // folds in cell-id order, so 1, 2, and 5 workers must produce the
    // same `ShardSummary` down to the last bit.
    let make = |workers: usize| {
        let mut config = ShardConfig::new(template(8, 17), 6, 8, (0..36).map(mixed_spec).collect())
            .with_workers(workers);
        config.template.telemetry = config.template.telemetry.with_window_ms(200.0);
        Shard::run(config)
    };
    let one = make(1);
    let two = make(2);
    let five = make(5);
    assert_eq!(one, two, "1 vs 2 workers");
    assert_eq!(one, five, "1 vs 5 workers");
    assert_eq!(one.sessions, 36);
    assert_eq!(one.cells, 6);
}

/// The retirement window for the bounded-memory smoke, ms. The CI job sets
/// `QVR_RETIRE_WINDOW`; locally the default keeps the test meaningful.
fn retire_window_ms() -> f64 {
    std::env::var("QVR_RETIRE_WINDOW")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(250.0)
}

#[test]
fn shard_bounded_memory_retains_o_cells_x_window_tasks() {
    // The scale claim behind the ≥100k-session sweep: each cell retires
    // its schedule history behind a window, and cells ship sink states —
    // never frame records — across the seam, so shard-wide live state is
    // O(cells × window) regardless of roster size. Debug builds run a
    // smaller instance; the release CI bounded-memory job runs the full
    // shape.
    let (cells, per_cell, frames) = if cfg!(debug_assertions) {
        (4, 8, 6)
    } else {
        (16, 32, 10)
    };
    let window_ms = retire_window_ms();
    let mut t = template(frames, 42);
    t.retire_window_ms = Some(window_ms);
    let roster = (0..cells * per_cell).map(mixed_spec).collect();
    let summary = Shard::run(ShardConfig::new(t, cells, per_cell, roster));
    assert_eq!(summary.sessions, cells * per_cell, "everyone placed");
    assert_eq!(summary.frames, cells * per_cell * frames);
    // Same per-resource O(window) cap the churn smoke pins, summed over
    // the cells: ~8 live tasks per simulated ms of window on any one
    // resource, independent of how many sessions or frames ran.
    let cap = cells * (8.0 * window_ms) as usize;
    assert!(
        summary.peak_live_tasks < cap,
        "live schedule state must stay O(cells x window): peak {} vs cap \
         {cap} ({} sessions, window {window_ms} ms)",
        summary.peak_live_tasks,
        summary.sessions,
    );
}

#[test]
fn spill_admission_routes_around_loaded_cells() {
    // Give each cell so little headroom that a full roster cannot all be
    // admitted at full share: joins must spill across cells in
    // least-loaded order and the stragglers take degraded shares or
    // rejections — and the counters must account for every join.
    let policy = AdmissionPolicy {
        probe_frames: 3,
        max_server_utilization: 0.9,
        ..AdmissionPolicy::default()
    };
    let config = ShardConfig::new(template(6, 9), 3, 4, (0..12).map(mixed_spec).collect())
        .with_admission(policy);
    let s = Shard::run(config);
    assert!(s.probes_run > 0, "admission must actually probe");
    assert_eq!(
        s.sessions + s.rejected,
        12,
        "every join is placed or rejected: {s}"
    );
    assert!(
        s.cell_sessions.iter().all(|&n| n <= 4),
        "no cell exceeds its capacity: {:?}",
        s.cell_sessions
    );
    let spread = s.cell_sessions.iter().max().unwrap() - s.cell_sessions.iter().min().unwrap();
    assert!(
        spread <= 1,
        "least-loaded routing keeps occupancy balanced: {:?}",
        s.cell_sessions
    );
}

#[test]
fn reject_only_admission_rejects_what_no_cell_can_hold() {
    // With degraded admission disabled and a hostile SLO, the shard must
    // reject (never silently place) joins that no cell's probe can hold.
    let mut policy = AdmissionPolicy::default().reject_only();
    policy.probe_frames = 3;
    policy.mtp_p95_slo_ms = 1.0; // unsatisfiable
    let config = ShardConfig::new(template(4, 5), 2, 4, (0..6).map(mixed_spec).collect())
        .with_admission(policy);
    let s = Shard::run(config);
    assert_eq!(s.sessions, 0, "nothing can hold a 1 ms p95 SLO");
    assert_eq!(s.rejected, 6);
    assert_eq!(s.degraded, 0, "reject-only control never degrades");
    assert_eq!(s.cells, 0, "empty cells never run");
}

#[test]
fn churn_cells_merge_through_the_same_seam() {
    // Churn fleets are cells too: enable the aggregate stream before the
    // first frame, drive each cell to completion, and fold the bundles
    // through the same `ShardSummary::merge` — deterministically.
    let make_cell = |cell: usize| {
        let spec = |i: usize| mixed_spec(cell * 7 + i);
        let initial: Vec<SessionSpec> = (0..3).map(spec).collect();
        let events = vec![
            ChurnEvent::leave(260.0, 0),
            ChurnEvent::join(290.0, spec(3)),
        ];
        let mut config = ChurnConfig::new(
            SystemConfig::default(),
            initial,
            ChurnTrace::script(events),
            700.0,
            cell_seed(33, cell),
        );
        config.server_units = 4;
        config.link_streams = 2;
        let mut fleet = ChurnFleet::new(config);
        fleet.enable_cell_sinks();
        fleet.finish_cell(cell)
    };
    let merge = || ShardSummary::merge((0..2).map(make_cell).collect());
    let a = merge();
    let b = merge();
    assert_eq!(a, b, "churn cells merge deterministically");
    assert_eq!(a.cells, 2);
    assert_eq!(a.sessions, 8, "3 initial + 1 joiner per cell");
    assert!(a.frames > 0);
    assert!(a.mtp_p95_ms >= a.mtp_p50_ms && a.mtp_p50_ms > 0.0);
    assert!(a.energy.total_mj() > 0.0);
    assert!(
        a.energy.server_render_mj > 0.0 && a.energy.client_mj > 0.0,
        "merged energy carries every component"
    );
}

#[test]
fn merged_load_keeps_cell_slot_namespaces_disjoint() {
    // The stale-EWMA regression: before namespacing, cell 1's slot 0
    // landed on the same tracker slot as cell 0's slot 0, so a spilled
    // joiner inherited another cell's recycled load history. The merged
    // view must give every cell its own slot range.
    let s = Shard::run(ShardConfig::new(
        template(6, 23),
        3,
        4,
        (0..12).map(mixed_spec).collect(),
    ));
    let merged = s.merged_load();
    let mut base = 0;
    for cell in 0..3 {
        let snapshot = s.cell_load(cell);
        for (slot, ewma) in snapshot.iter().enumerate() {
            assert_eq!(
                merged.ewma(base + slot),
                *ewma,
                "cell {cell} slot {slot} must land at merged slot {}",
                base + slot
            );
        }
        base += snapshot.len();
    }
    assert!(base >= 12, "every routed session has a load slot");
}

#[test]
fn admission_release_carries_the_full_energy_breakdown() {
    // The zero-energy regression (satellite 1): `release` re-aggregates
    // the roster through `FleetSummary::from_sessions` /
    // `without_session`, which used to zero the infrastructure energy.
    // After releasing a member, the controller's accepted summary must
    // still report non-zero server and radio energy.
    let mut policy = AdmissionPolicy::default()
        .with_mtp_p95_slo_ms(60.0)
        .with_min_fps_floor(20.0);
    policy.probe_frames = 4;
    let mut c = AdmissionController::new(
        SystemConfig::default(),
        FairnessPolicy::EqualShare,
        policy,
        7,
    );
    c.offer_all((0..3).map(mixed_spec));
    let admitted = c.admitted().len();
    assert!(
        admitted >= 2,
        "need members to release ({admitted} admitted)"
    );
    c.release(0);
    let summary = c.accepted_summary().expect("members remain after release");
    assert!(
        summary.energy.server_render_mj > 0.0
            && summary.energy.server_idle_mj > 0.0
            && summary.energy.ap_radio_mj > 0.0,
        "release must carry infrastructure energy, not zero it: {:?}",
        summary.energy
    );
    assert!(
        summary.energy.client_mj > 0.0,
        "client energy re-sums over the survivors"
    );
}

#[test]
fn without_session_resums_client_and_carries_infrastructure_energy() {
    let mut config = template(20, 13);
    config.sessions = (0..4).map(mixed_spec).collect();
    let full = Fleet::run(config);
    let dropped = full.without_session(1);
    assert_eq!(dropped.len(), 3);
    // Infrastructure (server + AP) energy is a property of the schedule
    // the fleet actually ran — carried bit-for-bit.
    assert_eq!(
        dropped.energy.server_render_mj,
        full.energy.server_render_mj
    );
    assert_eq!(
        dropped.energy.server_encode_mj,
        full.energy.server_encode_mj
    );
    assert_eq!(dropped.energy.server_idle_mj, full.energy.server_idle_mj);
    assert_eq!(dropped.energy.ap_radio_mj, full.energy.ap_radio_mj);
    assert!(full.energy.server_render_mj > 0.0, "and it is not zero");
    // Client energy re-sums over the survivors: strictly less than the
    // full roster's, and still positive.
    assert!(
        dropped.energy.client_mj > 0.0 && dropped.energy.client_mj < full.energy.client_mj,
        "client energy must shrink to the survivors: {} vs {}",
        dropped.energy.client_mj,
        full.energy.client_mj
    );
}
