//! Fleet-level integration tests: determinism, single-session equivalence,
//! and the acceptance-shape contention curve (flat tails up to the server
//! pool size, measurable degradation once oversubscribed).

use qvr::prelude::*;
use qvr::scene::Benchmark;

fn wifi_fleet(n: usize, frames: usize, seed: u64) -> FleetConfig {
    FleetConfig::uniform(
        SystemConfig::default(),
        SchemeKind::Qvr,
        Benchmark::Hl2H.profile(),
        n,
        frames,
        seed,
    )
}

#[test]
fn same_seed_and_size_give_identical_fleet_aggregates() {
    let a = Fleet::run(wifi_fleet(8, 60, 42));
    let b = Fleet::run(wifi_fleet(8, 60, 42));
    assert_eq!(a.mtp_p50_ms, b.mtp_p50_ms);
    assert_eq!(a.mtp_p95_ms, b.mtp_p95_ms);
    assert_eq!(a.mtp_p99_ms, b.mtp_p99_ms);
    assert_eq!(a.fps_floor, b.fps_floor);
    assert_eq!(a.server_utilization, b.server_utilization);
    assert_eq!(a, b, "full fleet summaries must be bit-identical");
}

#[test]
fn different_seeds_give_different_fleets() {
    let a = Fleet::run(wifi_fleet(4, 40, 1));
    let b = Fleet::run(wifi_fleet(4, 40, 2));
    assert_ne!(a, b);
}

#[test]
fn run_delegates_to_a_private_single_session_fleet() {
    // The old API and a stepped private session must agree exactly.
    let config = SystemConfig::default();
    for kind in [
        SchemeKind::LocalOnly,
        SchemeKind::StaticCollab,
        SchemeKind::Qvr,
    ] {
        let via_run = kind.run(&config, Benchmark::Grid.profile(), 50, 7);
        let mut session = kind.session(&config, Benchmark::Grid.profile(), 7);
        for _ in 0..50 {
            session.step();
        }
        assert_eq!(via_run, session.finish(), "{kind}");
    }
}

#[test]
fn eight_qvr_sessions_on_default_server_and_wifi_complete() {
    // The headline acceptance scenario: 8 Q-VR tenants, mcm_8_gpu pool,
    // shared Wi-Fi.
    let summary = Fleet::run(wifi_fleet(8, 80, 42));
    assert_eq!(summary.len(), 8);
    assert_eq!(summary.server_units, 8);
    assert!(summary.shared_network);
    for s in &summary.sessions {
        assert_eq!(s.len(), 80, "every session reports every frame");
        assert_eq!(s.scheme, "Q-VR");
        assert!(
            s.fps() > 60.0,
            "tenant holds interactive rates, got {:.0}",
            s.fps()
        );
        assert!(s.energy.total_mj() > 0.0);
    }
    assert!(summary.server_utilization > 0.0);
}

#[test]
fn p95_flat_up_to_pool_size_then_degrades() {
    // Real contention shape: within the 8-unit pool (and the link's
    // concurrent streams) the tail stays flat; oversubscribing degrades it
    // measurably.
    let frames = 60;
    let p95 = |n: usize| Fleet::run(wifi_fleet(n, frames, 42)).mtp_p95_ms;
    let p1 = p95(1);
    let p8 = p95(8);
    let p16 = p95(16);
    assert!(
        p8 < p1 * 1.15,
        "p95 must stay flat up to the pool size: 1 session {p1:.1} ms vs 8 sessions {p8:.1} ms"
    );
    assert!(
        p16 > p8 * 1.15,
        "oversubscription must degrade the tail: 8 sessions {p8:.1} ms vs 16 {p16:.1} ms"
    );
}

/// One pinned fleet outcome: every aggregate as raw `f64` bits, plus an
/// order-sensitive FNV-1a checksum over every session's per-frame
/// `(mtp_ms, tx_bytes)` stream.
struct Golden {
    preset: NetworkPreset,
    n: usize,
    mtp_p50: u64,
    mtp_p95: u64,
    mtp_p99: u64,
    fps_floor: u64,
    mean_fps: u64,
    server_utilization: u64,
    makespan: u64,
    mean_tx: u64,
    frame_hash: u64,
}

/// Captured from the pre-policy engine (PR 1) for the `fig_fleet`
/// 1/8/32-session configs: `FleetConfig::uniform(default + preset, Qvr,
/// Hl2H, n, 120 frames, seed 42)`. `FairnessPolicy::EqualShare` with unit
/// shares must keep reproducing these bits forever.
#[rustfmt::skip]
const GOLDENS: [Golden; 9] = [
    Golden { preset: NetworkPreset::WiFi,    n: 1,  mtp_p50: 0x4031e994ab7b48ff, mtp_p95: 0x40324e6d4bf69b5f, mtp_p99: 0x4032de8129013530, fps_floor: 0x405b1235204b5101, mean_fps: 0x405b1235204b5101, server_utilization: 0x3f8748afa95c173d, makespan: 0x409150c4875b11b2, mean_tx: 0x40fc4f9bd00234a6, frame_hash: 0x30409bc01f977dea },
    Golden { preset: NetworkPreset::WiFi,    n: 8,  mtp_p50: 0x4031fc7fa77f298e, mtp_p95: 0x40329b837f7d7016, mtp_p99: 0x403327914c5adb02, fps_floor: 0x405ac9e7caf52d54, mean_fps: 0x405affe4cae6249e, server_utilization: 0x3fb719ae3a65783f, makespan: 0x40917f8078347e4a, mean_tx: 0x40fc65c42ca56ca2, frame_hash: 0xaf2b199dfdb60026 },
    Golden { preset: NetworkPreset::WiFi,    n: 32, mtp_p50: 0x403f220f2b413b5f, mtp_p95: 0x404220c830d35846, mtp_p99: 0x404688bc8900af28, fps_floor: 0x4048c80426040b43, mean_fps: 0x404906cefaac8158, server_utilization: 0x3fc4d017abe7bd6e, makespan: 0x40a2ea5bbe72131b, mean_tx: 0x40f6fb714cf83a9c, frame_hash: 0x1c796aeb7aef6621 },
    Golden { preset: NetworkPreset::Lte4G,   n: 1,  mtp_p50: 0x404119493fc95a98, mtp_p95: 0x404185306b1b4c9e, mtp_p99: 0x4041f4095627d812, fps_floor: 0x404cdd45ab30e8c0, mean_fps: 0x404cdd45ab30e8c0, server_utilization: 0x3f7856ad95c61eac, makespan: 0x40a03d60db4498cb, mean_tx: 0x40f82df0dd785827, frame_hash: 0xc7b8d4e8b485ae4b },
    Golden { preset: NetworkPreset::Lte4G,   n: 8,  mtp_p50: 0x40412a41cac8daea, mtp_p95: 0x4041b06d04f9b782, mtp_p99: 0x404229ea33e27f46, fps_floor: 0x404c65de842ccb4f, mean_fps: 0x404cbb25a8f62458, server_utilization: 0x3fa8022039669be4, makespan: 0x40a081a91e4eff93, mean_tx: 0x40f83fc81a9434c8, frame_hash: 0x8d1ca31476f20afb },
    Golden { preset: NetworkPreset::Lte4G,   n: 32, mtp_p50: 0x404a3325970ff077, mtp_p95: 0x4051b7a41fafea68, mtp_p99: 0x40589d68fd1e6b53, fps_floor: 0x403d09164eeeff98, mean_fps: 0x403d4e350ae4463d, server_utilization: 0x3fb7a5fd78db9fd7, makespan: 0x40b024df4f790438, mean_tx: 0x40f0c279d73f03e8, frame_hash: 0x439f77c76a42e668 },
    Golden { preset: NetworkPreset::Early5G, n: 1,  mtp_p50: 0x402b8a5ebcff11e8, mtp_p95: 0x402bdd86129ea7ca, mtp_p99: 0x402c564a4864d6a0, fps_floor: 0x40615e49b0aa222f, mean_fps: 0x40615e49b0aa222f, server_utilization: 0x3f8e14c28ccd3fbf, makespan: 0x408afd2262e0b406, mean_tx: 0x40fdb6aff414f27b, frame_hash: 0x54cc4704a4d70d20 },
    Golden { preset: NetworkPreset::Early5G, n: 8,  mtp_p50: 0x402b9aa6a08d620e, mtp_p95: 0x402c236a2a4392a8, mtp_p99: 0x402c8688f7507834, fps_floor: 0x40614245858ba068, mean_fps: 0x406156b635a60f8f, server_utilization: 0x3fbdf92db6769c7b, makespan: 0x408b28f1f72cc1f8, mean_tx: 0x40fdd90580b5e002, frame_hash: 0x46d8b946595d7f27 },
    Golden { preset: NetworkPreset::Early5G, n: 32, mtp_p50: 0x403437ddc130aaec, mtp_p95: 0x40351ba707ebc4de, mtp_p99: 0x403665ed2674f947, fps_floor: 0x4057fc597daf5ca9, mean_fps: 0x40582b32085bc978, server_utilization: 0x3fd490e5a8a4af75, makespan: 0x40938af8f5205c45, mean_tx: 0x40fb494288301d1a, frame_hash: 0x2936d85e0ac6635d },
];

#[test]
fn equal_share_unit_weights_reproduce_the_pre_policy_engine_bit_exactly() {
    // The backwards-compatibility contract of the fairness layer: the
    // default `FairnessPolicy::EqualShare` with unit `LinkShare`s must give
    // bit-identical `FleetSummary` output to the engine before fairness
    // policies existed, for the fig_fleet 1/8/32-session configs. Debug
    // builds skip the 32-session rows (they dominate the runtime); the
    // release CI job runs all nine.
    for g in &GOLDENS {
        if cfg!(debug_assertions) && g.n > 8 {
            continue;
        }
        let config = FleetConfig::uniform(
            SystemConfig::default().with_network(g.preset),
            SchemeKind::Qvr,
            Benchmark::Hl2H.profile(),
            g.n,
            120,
            42,
        );
        assert_eq!(config.fairness, FairnessPolicy::EqualShare);
        assert!(config
            .sessions
            .iter()
            .all(|s| s.share == LinkShare::default()));
        let s = Fleet::run(config);
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for sess in &s.sessions {
            for f in &sess.frames {
                hash ^= f.mtp_ms.to_bits();
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
                hash ^= f.tx_bytes.to_bits();
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        let ctx = format!("{} x{}", g.preset.label(), g.n);
        assert_eq!(s.mtp_p50_ms.to_bits(), g.mtp_p50, "{ctx}: p50");
        assert_eq!(s.mtp_p95_ms.to_bits(), g.mtp_p95, "{ctx}: p95");
        assert_eq!(s.mtp_p99_ms.to_bits(), g.mtp_p99, "{ctx}: p99");
        assert_eq!(s.fps_floor.to_bits(), g.fps_floor, "{ctx}: fps floor");
        assert_eq!(s.mean_fps.to_bits(), g.mean_fps, "{ctx}: mean fps");
        assert_eq!(
            s.server_utilization.to_bits(),
            g.server_utilization,
            "{ctx}: server utilization"
        );
        assert_eq!(s.makespan_ms.to_bits(), g.makespan, "{ctx}: makespan");
        assert_eq!(s.mean_tx_bytes().to_bits(), g.mean_tx, "{ctx}: mean tx");
        assert_eq!(hash, g.frame_hash, "{ctx}: per-frame stream");
    }
}

#[test]
fn oversubscribed_sessions_shed_network_load() {
    // Each tenant's LIWC reacts to the shrinking bandwidth share by growing
    // its fovea: per-session transmitted bytes must drop.
    let frames = 60;
    let bytes = |n: usize| Fleet::run(wifi_fleet(n, frames, 42)).mean_tx_bytes();
    let at8 = bytes(8);
    let at32 = bytes(32);
    assert!(
        at32 < at8 * 0.95,
        "32 tenants must ship less per frame than 8: {at32:.0} vs {at8:.0} bytes"
    );
}
