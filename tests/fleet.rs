//! Fleet-level integration tests: determinism, single-session equivalence,
//! and the acceptance-shape contention curve (flat tails up to the server
//! pool size, measurable degradation once oversubscribed).

use qvr::prelude::*;
use qvr::scene::Benchmark;

fn wifi_fleet(n: usize, frames: usize, seed: u64) -> FleetConfig {
    FleetConfig::uniform(
        SystemConfig::default(),
        SchemeKind::Qvr,
        Benchmark::Hl2H.profile(),
        n,
        frames,
        seed,
    )
}

#[test]
fn same_seed_and_size_give_identical_fleet_aggregates() {
    let a = Fleet::run(wifi_fleet(8, 60, 42));
    let b = Fleet::run(wifi_fleet(8, 60, 42));
    assert_eq!(a.mtp_p50_ms, b.mtp_p50_ms);
    assert_eq!(a.mtp_p95_ms, b.mtp_p95_ms);
    assert_eq!(a.mtp_p99_ms, b.mtp_p99_ms);
    assert_eq!(a.fps_floor, b.fps_floor);
    assert_eq!(a.server_utilization, b.server_utilization);
    assert_eq!(a, b, "full fleet summaries must be bit-identical");
}

#[test]
fn different_seeds_give_different_fleets() {
    let a = Fleet::run(wifi_fleet(4, 40, 1));
    let b = Fleet::run(wifi_fleet(4, 40, 2));
    assert_ne!(a, b);
}

#[test]
fn run_delegates_to_a_private_single_session_fleet() {
    // The old API and a stepped private session must agree exactly.
    let config = SystemConfig::default();
    for kind in [
        SchemeKind::LocalOnly,
        SchemeKind::StaticCollab,
        SchemeKind::Qvr,
    ] {
        let via_run = kind.run(&config, Benchmark::Grid.profile(), 50, 7);
        let mut session = kind.session(&config, Benchmark::Grid.profile(), 7);
        for _ in 0..50 {
            session.step();
        }
        assert_eq!(via_run, session.finish(), "{kind}");
    }
}

#[test]
fn eight_qvr_sessions_on_default_server_and_wifi_complete() {
    // The headline acceptance scenario: 8 Q-VR tenants, mcm_8_gpu pool,
    // shared Wi-Fi.
    let summary = Fleet::run(wifi_fleet(8, 80, 42));
    assert_eq!(summary.len(), 8);
    assert_eq!(summary.server_units, 8);
    assert!(summary.shared_network);
    for s in &summary.sessions {
        assert_eq!(s.len(), 80, "every session reports every frame");
        assert_eq!(s.scheme, "Q-VR");
        assert!(
            s.fps() > 60.0,
            "tenant holds interactive rates, got {:.0}",
            s.fps()
        );
        assert!(s.energy.total_mj() > 0.0);
    }
    assert!(summary.server_utilization > 0.0);
}

#[test]
fn p95_flat_up_to_pool_size_then_degrades() {
    // Real contention shape: within the 8-unit pool (and the link's
    // concurrent streams) the tail stays flat; oversubscribing degrades it
    // measurably.
    let frames = 60;
    let p95 = |n: usize| Fleet::run(wifi_fleet(n, frames, 42)).mtp_p95_ms;
    let p1 = p95(1);
    let p8 = p95(8);
    let p16 = p95(16);
    assert!(
        p8 < p1 * 1.15,
        "p95 must stay flat up to the pool size: 1 session {p1:.1} ms vs 8 sessions {p8:.1} ms"
    );
    assert!(
        p16 > p8 * 1.15,
        "oversubscription must degrade the tail: 8 sessions {p8:.1} ms vs 16 {p16:.1} ms"
    );
}

#[test]
fn oversubscribed_sessions_shed_network_load() {
    // Each tenant's LIWC reacts to the shrinking bandwidth share by growing
    // its fovea: per-session transmitted bytes must drop.
    let frames = 60;
    let bytes = |n: usize| Fleet::run(wifi_fleet(n, frames, 42)).mean_tx_bytes();
    let at8 = bytes(8);
    let at32 = bytes(32);
    assert!(
        at32 < at8 * 0.95,
        "32 tenants must ship less per frame than 8: {at32:.0} vs {at8:.0} bytes"
    );
}
