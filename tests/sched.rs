//! Server scheduling policy integration tests: the quota invariant
//! (best-effort work never touches reserved units), the priority property
//! (adaptive tenants' tail under `AdaptivePriority` no worse than under
//! `LeastLoaded` in the mixed noisy-neighbour fleet), the bounded aging
//! guarantee (deprioritised work still completes), determinism, and
//! `LeastLoaded` parity with the default engine.

use qvr::prelude::*;
use qvr::scene::Benchmark;

/// The canonical fig_sched noisy-neighbour roster (5 adaptive tenants —
/// 4 Q-VR + DFR — and 3 best-effort: FFR, Static, Remote) and the sweep's
/// own config builder, so these tests lock exactly the fleet shape the
/// sweep runs.
use qvr_bench::fig_sched::mixed_sessions;

fn mixed_config(policy: ServerPolicy, frames: usize) -> FleetConfig {
    qvr_bench::fig_sched::mixed_config(NetworkPreset::WiFi, policy, frames)
}

fn adaptive_mask() -> Vec<bool> {
    mixed_sessions()
        .iter()
        .map(|s| s.scheme.is_adaptive())
        .collect()
}

#[test]
fn quota_invariant_best_effort_never_touches_reserved_units() {
    // A fleet of only best-effort tenants under QuotaPartition: the
    // reserved slice of the GPU (and encoder) pool must finish the run
    // with zero busy time — no best-effort chain ever lands there.
    let reserved = 5;
    let mut config = mixed_config(ServerPolicy::QuotaPartition { reserved }, 15);
    config.sessions = vec![
        SessionSpec::new(SchemeKind::StaticCollab, Benchmark::Doom3H.profile()),
        SessionSpec::new(SchemeKind::RemoteOnly, Benchmark::Wolf.profile()),
        SessionSpec::new(SchemeKind::Ffr, Benchmark::Hl2L.profile()),
        SessionSpec::new(SchemeKind::RemoteOnly, Benchmark::Hl2H.profile()),
    ];
    let mut fleet = Fleet::new(config);
    let engine = fleet.shared_engine();
    for _ in 0..15 {
        fleet.step_round();
    }
    let units = SystemConfig::default().remote.count() as usize;
    for pool_name in ["RGPU", "SENC"] {
        let pool = engine.resource_pool(pool_name, units);
        let unit_ids = engine.pool_units(pool);
        for (i, unit) in unit_ids.iter().enumerate() {
            if i < reserved {
                assert_eq!(
                    engine.busy_ms(*unit),
                    0.0,
                    "best-effort work must never run on reserved {pool_name}[{i}]"
                );
            }
        }
        let slice_busy: f64 = unit_ids[reserved..]
            .iter()
            .map(|u| engine.busy_ms(*u))
            .sum();
        assert!(
            slice_busy > 0.0,
            "the best-effort {pool_name} slice must carry the whole load"
        );
    }
    let summary = fleet.finish();
    for s in &summary.sessions {
        assert_eq!(s.len(), 15, "confinement must not drop frames");
    }
}

#[test]
fn adaptive_only_quota_fleet_stays_inside_its_slice() {
    // The complement: an all-adaptive fleet under QuotaPartition leaves
    // the best-effort slice untouched (the partition is strict both ways).
    let reserved = 6;
    let mut config = mixed_config(ServerPolicy::QuotaPartition { reserved }, 10);
    config.sessions = (0..4)
        .map(|_| SessionSpec::new(SchemeKind::Qvr, Benchmark::Hl2H.profile()))
        .collect();
    let mut fleet = Fleet::new(config);
    let engine = fleet.shared_engine();
    for _ in 0..10 {
        fleet.step_round();
    }
    let units = SystemConfig::default().remote.count() as usize;
    let pool = engine.resource_pool("RGPU", units);
    let unit_ids = engine.pool_units(pool);
    for (i, unit) in unit_ids.iter().enumerate().skip(reserved) {
        assert_eq!(
            engine.busy_ms(*unit),
            0.0,
            "adaptive work must stay off best-effort RGPU[{i}]"
        );
    }
}

#[test]
fn priority_and_quota_do_not_worsen_the_adaptive_tail() {
    // The priority property on the mixed noisy-neighbour fleet: isolating
    // policies must leave the adaptive class's p95 MTP no worse than
    // least-loaded placement, and (at this contention level) strictly
    // better by a wide margin.
    let frames = 40;
    let adaptive = adaptive_mask();
    let base = Fleet::run(mixed_config(ServerPolicy::LeastLoaded, frames));
    let quota = Fleet::run(mixed_config(
        ServerPolicy::QuotaPartition { reserved: 6 },
        frames,
    ));
    let prio = Fleet::run(mixed_config(
        ServerPolicy::AdaptivePriority { aging_ms: 50.0 },
        frames,
    ));
    let p95 = |s: &FleetSummary| s.mtp_p95_over(&adaptive);
    assert!(
        p95(&quota) < p95(&base),
        "quota must improve the adaptive tail: {:.1} vs {:.1} ms",
        p95(&quota),
        p95(&base)
    );
    assert!(
        p95(&prio) <= p95(&base),
        "priority must not worsen the adaptive tail: {:.1} vs {:.1} ms",
        p95(&prio),
        p95(&base)
    );
    let floor = |s: &FleetSummary| s.fps_floor_over(&adaptive);
    assert!(
        floor(&quota) > floor(&base),
        "quota must lift the adaptive FPS floor: {:.0} vs {:.0}",
        floor(&quota),
        floor(&base)
    );
}

#[test]
fn aging_bound_keeps_best_effort_work_flowing() {
    // Bounded aging: packed best-effort tenants are deprioritised, never
    // starved — every session still completes every frame at a positive
    // frame rate, even with a zero aging bound (pure work-conserving
    // fallback) and a large one (maximal packing).
    for aging_ms in [0.0, 50.0, 500.0] {
        let summary = Fleet::run(mixed_config(
            ServerPolicy::AdaptivePriority { aging_ms },
            20,
        ));
        for (i, s) in summary.sessions.iter().enumerate() {
            assert_eq!(s.len(), 20, "session {i} lost frames at aging {aging_ms}");
            assert!(
                s.fps() > 0.0,
                "session {i} starved at aging {aging_ms}: {:.2} FPS",
                s.fps()
            );
        }
    }
}

#[test]
fn policy_fleets_are_deterministic() {
    for policy in [
        ServerPolicy::QuotaPartition { reserved: 6 },
        ServerPolicy::AdaptivePriority { aging_ms: 50.0 },
        qvr_bench::fig_sched::measured_policy(),
    ] {
        let a = Fleet::run(mixed_config(policy, 12));
        let b = Fleet::run(mixed_config(policy, 12));
        assert_eq!(a, b, "{policy} runs must be bit-identical");
    }
}

#[test]
fn measured_load_separates_the_mixed_roster_by_measurement() {
    // The telemetry LoadTracker drives placement: after a short run the
    // mixed roster's measured EWMAs must split exactly where the probe
    // calibrated the threshold — Static and Remote heavy, everyone else
    // (including best-effort-classed FFR) light.
    let mut fleet = Fleet::new(mixed_config(qvr_bench::fig_sched::measured_policy(), 20));
    for _ in 0..20 {
        fleet.step_round();
    }
    let heavy_ms = qvr_bench::fig_sched::MEASURED_HEAVY_MS;
    for (i, spec) in mixed_sessions().iter().enumerate() {
        let ewma = fleet.load_ewma(i).expect("every tenant measured");
        let heavy = matches!(
            spec.scheme,
            SchemeKind::StaticCollab | SchemeKind::RemoteOnly
        );
        assert_eq!(
            ewma > heavy_ms,
            heavy,
            "session {i} ({}) measured {ewma:.1} ms/frame vs threshold {heavy_ms}",
            spec.scheme
        );
    }
}

#[test]
fn measured_load_matches_or_beats_quota_on_the_mixed_roster() {
    // The PR 4 follow-up's acceptance: placement by measured load must
    // recover the adaptive tail like the class-based quota does, while the
    // fleet-wide floor does at least as well — FFR (best-effort by class,
    // light by measurement) earns light placement instead of queueing
    // behind Static/Remote on the 2-unit best-effort slice.
    let frames = 40;
    let adaptive = adaptive_mask();
    let quota = Fleet::run(mixed_config(
        ServerPolicy::QuotaPartition { reserved: 6 },
        frames,
    ));
    let measured = Fleet::run(mixed_config(
        qvr_bench::fig_sched::measured_policy(),
        frames,
    ));
    let base = Fleet::run(mixed_config(ServerPolicy::LeastLoaded, frames));
    assert!(
        measured.mtp_p95_over(&adaptive) < base.mtp_p95_over(&adaptive),
        "measured placement must recover the adaptive tail vs least-loaded: \
         {:.1} vs {:.1} ms",
        measured.mtp_p95_over(&adaptive),
        base.mtp_p95_over(&adaptive)
    );
    assert!(
        measured.mtp_p95_over(&adaptive) <= quota.mtp_p95_over(&adaptive) * 1.10,
        "measured must match the quota row's adaptive recovery: {:.1} vs {:.1} ms",
        measured.mtp_p95_over(&adaptive),
        quota.mtp_p95_over(&adaptive)
    );
    assert!(
        measured.fps_floor >= quota.fps_floor * 0.99,
        "freeing FFR from the heavy slice must not cost the fleet floor \
         (set by the network-bound heavy tenants either way): {:.2} vs {:.2} FPS",
        measured.fps_floor,
        quota.fps_floor
    );
    // The beat: FFR is best-effort by class but light by measurement, so
    // quota confines it to the 2-unit heavy slice behind Static/Remote
    // while measured placement frees it — its frame rate must recover by
    // a wide factor.
    let ffr = mixed_sessions()
        .iter()
        .position(|s| s.scheme == SchemeKind::Ffr)
        .expect("roster has an FFR tenant");
    assert!(
        measured.sessions[ffr].fps() > 4.0 * quota.sessions[ffr].fps(),
        "measured placement must free the light-by-measurement FFR tenant: \
         {:.1} vs {:.1} FPS under quota",
        measured.sessions[ffr].fps(),
        quota.sessions[ffr].fps()
    );
}

#[test]
fn least_loaded_is_the_default_and_matches_an_explicit_selection() {
    // LeastLoaded parity: the default is LeastLoaded (the engine the
    // fig_fleet goldens in tests/fleet.rs bit-pin across PRs), and for an
    // all-adaptive fleet the policies that only re-place *best-effort*
    // work must reduce to it exactly — AdaptivePriority resolves every
    // adaptive tenant to whole-pool earliest-start, so the two schedules
    // must be bit-identical despite taking different config paths.
    let uniform = FleetConfig::uniform(
        SystemConfig::default(),
        SchemeKind::Qvr,
        Benchmark::Hl2H.profile(),
        4,
        15,
        42,
    );
    assert_eq!(uniform.server_policy, ServerPolicy::LeastLoaded);
    let all_adaptive = |policy: ServerPolicy| {
        let mut c = mixed_config(policy, 15);
        c.sessions = vec![
            SessionSpec::new(SchemeKind::Qvr, Benchmark::Hl2H.profile()),
            SessionSpec::new(SchemeKind::Dfr, Benchmark::Grid.profile()),
            SessionSpec::new(SchemeKind::QvrSw, Benchmark::Doom3L.profile()),
        ];
        Fleet::run(c)
    };
    let least_loaded = all_adaptive(ServerPolicy::LeastLoaded);
    let priority = all_adaptive(ServerPolicy::AdaptivePriority { aging_ms: 50.0 });
    assert_eq!(
        least_loaded, priority,
        "priority must be a no-op for an all-adaptive fleet"
    );
}

#[test]
fn churn_fleets_accept_a_server_policy() {
    // Policies thread through open fleets: a churn run under quota is
    // deterministic and the joining best-effort tenant stays off the
    // reserved slice.
    let make = || {
        let trace = ChurnTrace::script(vec![ChurnEvent::join(
            200.0,
            SessionSpec::new(SchemeKind::RemoteOnly, Benchmark::Wolf.profile()),
        )]);
        ChurnConfig::new(
            SystemConfig::default(),
            vec![
                SessionSpec::new(SchemeKind::Qvr, Benchmark::Hl2H.profile()),
                SessionSpec::new(SchemeKind::StaticCollab, Benchmark::Doom3H.profile()),
            ],
            trace,
            600.0,
            11,
        )
        .with_server_policy(ServerPolicy::QuotaPartition { reserved: 6 })
    };
    let a = ChurnFleet::run(make());
    let b = ChurnFleet::run(make());
    assert_eq!(a, b, "churn under a policy must stay deterministic");
    assert_eq!(a.len(), 3);
    for t in &a.tenants {
        assert!(!t.summary.is_empty(), "every tenant renders under quota");
    }
}

#[test]
#[should_panic(expected = "at least one unit")]
fn fleet_rejects_a_quota_wider_than_the_pool() {
    let mut config = mixed_config(ServerPolicy::QuotaPartition { reserved: 8 }, 5);
    config.server_units = 8;
    let _ = Fleet::new(config);
}
