//! Double-run determinism smoke: the whole pipeline is a pure function
//! of (config, profile, frames, seed).
//!
//! `qvr_lint` enforces this *statically* (no wall-clock in sim paths, no
//! unseeded RNG, no iteration-ordered containers on merge paths); this
//! test is the dynamic receipt. It runs the sharded 8×8 sweep shape
//! twice in the same process and at two worker counts, hashing every
//! deterministic field of the merged `ShardSummary` — if any ambient
//! state (time, address-space layout, thread interleaving) leaked into a
//! result, the digests would diverge.

use qvr_bench::fig_shard::determinism_digest;

const CELLS: usize = 8;
const PER_CELL: usize = 8;
const FRAMES: usize = 6;

/// Two invocations of the identical shape must agree bit for bit.
#[test]
fn shard_digest_is_stable_across_invocations() {
    let first = determinism_digest(CELLS, PER_CELL, FRAMES, 1);
    let second = determinism_digest(CELLS, PER_CELL, FRAMES, 1);
    assert_eq!(
        first, second,
        "re-running the same shard shape changed its digest — ambient \
         state leaked into the summary"
    );
}

/// Worker count is a throughput knob, never an observable: cells only
/// talk through the telemetry seam, so 1-worker and 4-worker runs merge
/// to the same summary.
#[test]
fn shard_digest_is_worker_count_independent() {
    let serial = determinism_digest(CELLS, PER_CELL, FRAMES, 1);
    let parallel = determinism_digest(CELLS, PER_CELL, FRAMES, 4);
    assert_eq!(
        serial, parallel,
        "worker count changed the merged summary — a cell leaked state \
         outside the telemetry seam"
    );
}

/// The closed-loop rate controller adds per-tenant state to the hot path;
/// it must stay a pure function of (config, roster, seed) — double runs
/// of the rate-controlled shard shape agree bit for bit.
#[test]
fn rate_controlled_digest_is_stable_across_invocations() {
    let first = qvr_bench::fig_rate::determinism_digest(CELLS, PER_CELL, FRAMES, 1);
    let second = qvr_bench::fig_rate::determinism_digest(CELLS, PER_CELL, FRAMES, 1);
    assert_eq!(
        first, second,
        "re-running the rate-controlled shard shape changed its digest — \
         ambient state leaked into the controller loop"
    );
}

/// Controller state lives inside each session's stepper, so it is
/// slot-namespaced by construction and worker scheduling can never
/// reorder its observations: 1-worker and 4-worker runs merge identically.
#[test]
fn rate_controlled_digest_is_worker_count_independent() {
    let serial = qvr_bench::fig_rate::determinism_digest(CELLS, PER_CELL, FRAMES, 1);
    let parallel = qvr_bench::fig_rate::determinism_digest(CELLS, PER_CELL, FRAMES, 4);
    assert_eq!(
        serial, parallel,
        "worker count changed the rate-controlled summary — controller \
         state leaked outside its cell"
    );
}
