//! Cross-crate integration tests: the paper's headline shapes must hold on
//! full 200-frame runs of the real pipeline.

use qvr::prelude::*;

fn config() -> SystemConfig {
    SystemConfig::default()
}

#[test]
fn scheme_ordering_on_heavy_benchmarks() {
    // Fig. 12's ordering: Q-VR > DFR ≥ FFR > Static > Baseline in
    // end-to-end latency for heavy scenes.
    for bench in [Benchmark::Grid, Benchmark::Wolf] {
        let cfg = config();
        let run = |k: SchemeKind| k.run(&cfg, bench.profile(), 200, 11).mean_mtp_ms();
        let base = run(SchemeKind::LocalOnly);
        let stat = run(SchemeKind::StaticCollab);
        let ffr = run(SchemeKind::Ffr);
        let dfr = run(SchemeKind::Dfr);
        let qvr = run(SchemeKind::Qvr);
        assert!(
            stat < base,
            "{bench}: static {stat:.1} < baseline {base:.1}"
        );
        assert!(ffr < stat, "{bench}: FFR {ffr:.1} < static {stat:.1}");
        assert!(dfr <= ffr * 1.05, "{bench}: DFR {dfr:.1} ~<= FFR {ffr:.1}");
        assert!(qvr < dfr, "{bench}: Q-VR {qvr:.1} < DFR {dfr:.1}");
    }
}

#[test]
fn qvr_meets_vr_targets_where_the_paper_says_so() {
    // Fig. 14(b): Q-VR sustains > 90 FPS on the default condition, and the
    // 25 ms MTP bound holds.
    let cfg = config();
    for bench in Benchmark::all() {
        let s = SchemeKind::Qvr.run(&cfg, bench.profile(), 200, 11);
        assert!(
            s.fps() >= 85.0,
            "{bench}: Q-VR FPS {:.0} below the 90 Hz neighbourhood",
            s.fps()
        );
        assert!(
            s.mean_mtp_ms() < 25.0,
            "{bench}: Q-VR MTP {:.1} ms above the 25 ms bound",
            s.mean_mtp_ms()
        );
    }
}

#[test]
fn qvr_speedup_band_over_baseline() {
    // Abstract: average 3.4x (up to 6.7x) end-to-end speedup over local
    // rendering. Allow a generous band around the shape.
    let cfg = config();
    let mut speedups = Vec::new();
    for bench in Benchmark::all() {
        let base = SchemeKind::LocalOnly.run(&cfg, bench.profile(), 150, 11);
        let qvr = SchemeKind::Qvr.run(&cfg, bench.profile(), 150, 11);
        speedups.push(base.mean_mtp_ms() / qvr.mean_mtp_ms());
    }
    let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
    let max = speedups.iter().cloned().fold(0.0, f64::max);
    assert!(
        (2.0..6.0).contains(&avg),
        "average speedup {avg:.1}x vs paper 3.4x"
    );
    assert!(
        (4.0..10.0).contains(&max),
        "max speedup {max:.1}x vs paper 6.7x"
    );
}

#[test]
fn qvr_transmits_far_less_than_remote_only() {
    // Fig. 13: ~85% average transmitted-data reduction vs full streaming.
    let cfg = config();
    let mut ratios = Vec::new();
    for bench in Benchmark::all() {
        let remote = SchemeKind::RemoteOnly.run(&cfg, bench.profile(), 100, 11);
        let qvr = SchemeKind::Qvr.run(&cfg, bench.profile(), 100, 11);
        ratios.push(qvr.mean_tx_bytes() / remote.mean_tx_bytes());
    }
    let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
    assert!(avg < 0.35, "average transmit ratio {avg:.2} vs paper 0.15");
}

#[test]
fn qvr_saves_energy_vs_baseline() {
    // Fig. 15: ~73% average energy reduction vs local rendering.
    let cfg = config();
    let mut ratios = Vec::new();
    for bench in Benchmark::all() {
        let base = SchemeKind::LocalOnly.run(&cfg, bench.profile(), 100, 11);
        let qvr = SchemeKind::Qvr.run(&cfg, bench.profile(), 100, 11);
        ratios.push(qvr.energy.total_mj() / base.energy.total_mj());
    }
    let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
    assert!(avg < 0.6, "average energy ratio {avg:.2} vs paper 0.27");
}

#[test]
fn perception_stays_lossless_under_qvr() {
    // Sec. 3.1's survey conclusion: every frame's foveation plan satisfies
    // the MAR bound, so users cannot tell Q-VR frames from native ones.
    let cfg = config();
    let model = PerceptionModel::new(DisplayGeometry::vive_pro_class(), MarModel::default());
    let s = SchemeKind::Qvr.run(&cfg, Benchmark::Hl2H.profile(), 100, 11);
    for f in &s.frames {
        let e1 = f.e1_deg.expect("foveated scheme records e1");
        let p = LayerPartition::with_optimal_middle(e1, model.display(), model.mar()).unwrap();
        assert!(
            model.score(&p).is_lossless(),
            "frame {} violates MAR",
            f.frame_id
        );
    }
    let survey = model.run_survey(
        &LayerPartition::with_optimal_middle(
            s.mean_e1_deg(50).unwrap(),
            model.display(),
            model.mar(),
        )
        .unwrap(),
        50,
        7,
    );
    assert_eq!(survey.fraction_noticing, 0.0);
}

#[test]
fn network_sensitivity_matches_table4_direction() {
    let bench = Benchmark::Hl2H;
    let e1_for = |preset: NetworkPreset| {
        let cfg = config().with_network(preset);
        SchemeKind::Qvr
            .run(&cfg, bench.profile(), 250, 11)
            .mean_e1_deg(125)
            .unwrap()
    };
    let wifi = e1_for(NetworkPreset::WiFi);
    let lte = e1_for(NetworkPreset::Lte4G);
    let five_g = e1_for(NetworkPreset::Early5G);
    assert!(lte > wifi, "LTE e1 {lte:.1} > WiFi e1 {wifi:.1}");
    assert!(wifi > five_g, "WiFi e1 {wifi:.1} > 5G e1 {five_g:.1}");
}

#[test]
fn frequency_sensitivity_matches_table4_direction() {
    let bench = Benchmark::Ut3;
    let e1_for = |mhz: f64| {
        let cfg = config().with_gpu_frequency_mhz(mhz);
        SchemeKind::Qvr
            .run(&cfg, bench.profile(), 250, 11)
            .mean_e1_deg(125)
            .unwrap()
    };
    let at_500 = e1_for(500.0);
    let at_300 = e1_for(300.0);
    assert!(
        at_300 < at_500,
        "slower GPUs keep smaller foveas: 300 MHz {at_300:.1}° vs 500 MHz {at_500:.1}°"
    );
}

#[test]
fn runs_are_fully_deterministic_across_schemes() {
    let cfg = config();
    for kind in SchemeKind::all() {
        let a = kind.run(&cfg, Benchmark::Doom3H.profile(), 50, 99);
        let b = kind.run(&cfg, Benchmark::Doom3H.profile(), 50, 99);
        assert_eq!(a, b, "{kind} must be deterministic");
    }
}
