//! Allocation-count regression gate for the per-frame hot path.
//!
//! A counting global allocator wraps `System` and tallies every
//! `alloc`/`realloc` while armed. The test warms an 8-session fleet past
//! its start-up transient (label interning pool, scratch buffers, engine
//! vectors), then counts allocations over a steady-state window and pins
//! the per-frame average to a small constant. Any change that reintroduces
//! a per-frame allocation site (dep-list `Vec`s, `format!`ed labels,
//! interval clones, per-event telemetry fan-out) shows up here as a
//! multiple-allocations-per-frame jump, long before it is visible in
//! wall-clock numbers.
//!
//! This lives in the root integration-test crate on purpose: every library
//! crate in the workspace is `#![forbid(unsafe_code)]`, and a
//! `GlobalAlloc` impl is unavoidably `unsafe`. Integration tests compile
//! as separate crates, so the forbid does not apply here.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use qvr::prelude::*;
use qvr::scene::Benchmark;

struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Steady-state allocations-per-frame ceiling for an 8-session Q-VR fleet
/// round. The hot path itself (dep lists, labels, pacing, telemetry
/// fan-out) is allocation-free; what remains is amortized `Vec` doubling
/// in the engine's task/interval history and the aggregate sink's sample
/// series, which averages out well under one allocation per frame over the
/// measurement window.
const MAX_ALLOCS_PER_FRAME: f64 = 2.0;

#[test]
fn steady_state_fleet_round_is_allocation_free() {
    let sessions = 8;
    let warmup_rounds = 24;
    let measured_rounds = 32;
    let config = FleetConfig::uniform(
        SystemConfig::default(),
        SchemeKind::Qvr,
        Benchmark::Hl2H.profile(),
        sessions,
        warmup_rounds + measured_rounds,
        42,
    );
    let mut fleet = Fleet::new(config);
    for _ in 0..warmup_rounds {
        fleet.step_round();
    }

    ALLOCS.store(0, Ordering::Relaxed);
    ARMED.store(true, Ordering::Relaxed);
    for _ in 0..measured_rounds {
        fleet.step_round();
    }
    ARMED.store(false, Ordering::Relaxed);
    let allocs = ALLOCS.load(Ordering::Relaxed);

    let frames = (measured_rounds * sessions) as f64;
    let per_frame = allocs as f64 / frames;
    eprintln!("steady-state: {allocs} allocations / {frames} frames = {per_frame:.3} per frame");
    assert!(
        per_frame <= MAX_ALLOCS_PER_FRAME,
        "steady-state hot path regressed: {allocs} allocations over \
         {frames} frames = {per_frame:.2}/frame (limit {MAX_ALLOCS_PER_FRAME})"
    );
}
