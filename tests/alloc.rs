//! Allocation-count regression gate for the per-frame hot path.
//!
//! A counting global allocator wraps `System` and tallies every
//! `alloc`/`realloc` while armed. The test warms an 8-session fleet past
//! its start-up transient (label interning pool, scratch buffers, engine
//! vectors), then counts allocations over a steady-state window and pins
//! the per-frame average to a small constant. Any change that reintroduces
//! a per-frame allocation site (dep-list `Vec`s, `format!`ed labels,
//! interval clones, per-event telemetry fan-out) shows up here as a
//! multiple-allocations-per-frame jump, long before it is visible in
//! wall-clock numbers.
//!
//! This lives in the root integration-test crate on purpose: every library
//! crate in the workspace is `#![forbid(unsafe_code)]`, and a
//! `GlobalAlloc` impl is unavoidably `unsafe`. Integration tests compile
//! as separate crates, so the forbid does not apply here.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use qvr::prelude::*;
use qvr::scene::Benchmark;

struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Steady-state allocations-per-frame ceiling for an 8-session Q-VR fleet
/// round. The hot path itself (dep lists, labels, pacing, telemetry
/// fan-out) is allocation-free; what remains is amortized `Vec` doubling
/// in the engine's task/interval history and the aggregate sink's sample
/// series, which averages out well under one allocation per frame over the
/// measurement window.
const MAX_ALLOCS_PER_FRAME: f64 = 2.0;

/// Ceiling with 1-in-32 span-trace sampling on: the sampled slot's event
/// push into the `TraceSink` recording is the only new allocation site
/// (one amortized-doubling `Vec` push per sampled frame; span capture
/// itself is plain `Copy` field writes on the rig), so the traced bound
/// sits just above the untraced one.
const MAX_ALLOCS_PER_FRAME_TRACED: f64 = 4.0;

/// Warms an 8-session Q-VR fleet under the given telemetry config past
/// its start-up transient, then returns the steady-state allocations per
/// frame over the measured window. Serialized with a mutex — the counting
/// allocator's tallies are process-global.
fn measured_per_frame(telemetry: TelemetryConfig) -> f64 {
    measured_per_frame_with(SystemConfig::default(), telemetry)
}

/// [`measured_per_frame`] under an explicit system config (the rate-control
/// gate runs the same window with the controller active).
fn measured_per_frame_with(system: SystemConfig, telemetry: TelemetryConfig) -> f64 {
    static GATE: Mutex<()> = Mutex::new(());
    let _serial = GATE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let sessions = 8;
    let warmup_rounds = 24;
    let measured_rounds = 32;
    let mut config = FleetConfig::uniform(
        system,
        SchemeKind::Qvr,
        Benchmark::Hl2H.profile(),
        sessions,
        warmup_rounds + measured_rounds,
        42,
    );
    config.telemetry = telemetry;
    let mut fleet = Fleet::new(config);
    for _ in 0..warmup_rounds {
        fleet.step_round();
    }

    ALLOCS.store(0, Ordering::Relaxed);
    ARMED.store(true, Ordering::Relaxed);
    for _ in 0..measured_rounds {
        fleet.step_round();
    }
    ARMED.store(false, Ordering::Relaxed);
    let allocs = ALLOCS.load(Ordering::Relaxed);

    let frames = (measured_rounds * sessions) as f64;
    let per_frame = allocs as f64 / frames;
    eprintln!("steady-state: {allocs} allocations / {frames} frames = {per_frame:.3} per frame");
    per_frame
}

#[test]
fn steady_state_fleet_round_is_allocation_free() {
    // The default telemetry config leaves tracing, metrics, and health
    // disabled, so holding this bound is also the receipt that the
    // observability hooks add zero allocations per frame when off.
    let per_frame = measured_per_frame(TelemetryConfig::default());
    assert!(
        per_frame <= MAX_ALLOCS_PER_FRAME,
        "steady-state hot path regressed: {per_frame:.2} allocations/frame \
         (limit {MAX_ALLOCS_PER_FRAME})"
    );
}

#[test]
fn rate_controlled_fleet_round_is_allocation_free() {
    // The closed-loop rate path (entropy-model evaluation, controller
    // observe/step, quality telemetry) is pure arithmetic on stepper-owned
    // state — turning it on must not add a single per-frame allocation.
    let per_frame = measured_per_frame_with(
        SystemConfig::default().with_rate_control(RateControlConfig::on()),
        TelemetryConfig::default(),
    );
    assert!(
        per_frame <= MAX_ALLOCS_PER_FRAME,
        "rate-controlled hot path allocates: {per_frame:.2} allocations/frame \
         (limit {MAX_ALLOCS_PER_FRAME})"
    );
}

#[test]
fn sampled_tracing_stays_within_its_pinned_allocation_bound() {
    // 1-in-32 sampling over 8 slots: pick a seed whose deterministic
    // sampler selects exactly one of this fleet's sessions, so the window
    // measures the real record-one-slot configuration.
    let trace = (0..10_000u64)
        .map(|seed| TraceConfig::sampled(seed, 32))
        .find(|t| (0..8).filter(|&i| t.samples_session(i)).count() == 1)
        .expect("some seed samples exactly one of 8 slots");
    let per_frame = measured_per_frame(TelemetryConfig::default().with_trace(trace));
    assert!(
        per_frame <= MAX_ALLOCS_PER_FRAME_TRACED,
        "sampled tracing blew its allocation budget: {per_frame:.2} \
         allocations/frame (limit {MAX_ALLOCS_PER_FRAME_TRACED})"
    );
}
