//! Virtual-time stepping and churn integration tests: clock monotonicity,
//! frame-count parity with round-robin, the §7 time-skew artifact
//! disappearing under `SteppingPolicy::VirtualTime`, churn determinism,
//! and the bounded-memory (O(window) retained tasks per resource) claim
//! the CI smoke job pins at 64 sessions.

use qvr::prelude::*;
use qvr::scene::Benchmark;

fn vt_fleet(n: usize, frames: usize, seed: u64) -> FleetConfig {
    let mut config = FleetConfig::uniform(
        SystemConfig::default(),
        SchemeKind::Qvr,
        Benchmark::Hl2H.profile(),
        n,
        frames,
        seed,
    );
    config.stepping = SteppingPolicy::VirtualTime;
    config
}

#[test]
fn virtual_time_never_steps_a_session_backwards() {
    // Property: stepping order is earliest-first, and no session's virtual
    // clock (last_display_end) ever decreases; moreover the global pick is
    // always the minimum clock among unfinished sessions.
    let mut fleet = Fleet::new(vt_fleet(6, 25, 21));
    let mut clocks = [0.0f64; 6];
    while let Some(slot) = fleet.step_next() {
        let before = clocks[slot];
        let after = fleet.sessions()[slot].last_display_end();
        assert!(
            after >= before,
            "session {slot}'s clock ran backwards: {after:.2} < {before:.2}"
        );
        // The popped session was the earliest unfinished one.
        for (i, c) in clocks.iter().enumerate() {
            if fleet.sessions()[i].frames_stepped() < 25 || i == slot {
                assert!(
                    before <= *c + 1e-9,
                    "stepped slot {slot} at {before:.2} but slot {i} was earlier at {c:.2}"
                );
            }
        }
        clocks[slot] = after;
    }
    for s in fleet.sessions() {
        assert_eq!(s.frames_stepped(), 25);
    }
}

#[test]
fn virtual_time_frame_counts_match_round_robin() {
    // Per-session frame counts are a budget, not a race: both policies
    // deliver exactly `frames` frames to every session.
    let rr = Fleet::run(FleetConfig::uniform(
        SystemConfig::default(),
        SchemeKind::Qvr,
        Benchmark::Hl2H.profile(),
        5,
        30,
        3,
    ));
    let vt = Fleet::run(vt_fleet(5, 30, 3));
    assert_eq!(rr.len(), vt.len());
    for (a, b) in rr.sessions.iter().zip(&vt.sessions) {
        assert_eq!(a.len(), 30);
        assert_eq!(b.len(), 30);
    }
}

#[test]
fn virtual_time_fleets_are_deterministic() {
    let a = Fleet::run(vt_fleet(6, 20, 11));
    let b = Fleet::run(vt_fleet(6, 20, 11));
    assert_eq!(a, b);
}

#[test]
fn uniform_fleets_agree_across_stepping_policies() {
    // A homogeneous fleet has (nearly) no time skew, so virtual-time
    // stepping must reproduce round-robin's aggregate shape — the policies
    // only diverge when tenants advance at very different paces.
    let rr = Fleet::run(FleetConfig::uniform(
        SystemConfig::default(),
        SchemeKind::Qvr,
        Benchmark::Hl2H.profile(),
        4,
        40,
        5,
    ));
    let vt = Fleet::run(vt_fleet(4, 40, 5));
    let ratio = vt.mtp_p95_ms / rr.mtp_p95_ms;
    assert!(
        (0.8..1.25).contains(&ratio),
        "uniform fleets should agree across policies: p95 ratio {ratio:.2}"
    );
}

/// Peak spread between session clocks over a whole run: the §7 skew.
fn peak_skew_ms(mut fleet: Fleet, frames: usize) -> f64 {
    let mut peak = 0.0f64;
    let mut measure = |sessions: &[Session]| {
        let unfinished: Vec<f64> = sessions
            .iter()
            .filter(|s| s.frames_stepped() > 0 && s.frames_stepped() < frames)
            .map(Session::last_display_end)
            .collect();
        if unfinished.len() >= 2 {
            let min = unfinished.iter().copied().fold(f64::INFINITY, f64::min);
            let max = unfinished.iter().copied().fold(0.0f64, f64::max);
            peak = peak.max(max - min);
        }
    };
    match fleet.stepping() {
        SteppingPolicy::RoundRobin => {
            for _ in 0..frames {
                fleet.step_round();
                measure(fleet.sessions());
            }
        }
        SteppingPolicy::VirtualTime => {
            while fleet.step_next().is_some() {
                measure(fleet.sessions());
            }
        }
    }
    peak
}

#[test]
fn virtual_time_retires_the_section7_skew_artifact() {
    // DESIGN.md §7: under round-robin, strongly unequal link shares make
    // per-session timelines advance at different simulated paces — after
    // enough rounds the tenants are whole time-windows apart, and the
    // slow tenant's far-future pool frontiers queue the fast one. Under
    // virtual-time stepping the same fleet stays synchronized: the peak
    // clock spread collapses to less than a couple of frame intervals.
    let frames = 60;
    let config = |stepping: SteppingPolicy| FleetConfig {
        system: SystemConfig::default(),
        sessions: vec![
            SessionSpec::new(SchemeKind::RemoteOnly, Benchmark::Hl2H.profile())
                .with_share(LinkShare::weighted(8.0)),
            SessionSpec::new(SchemeKind::RemoteOnly, Benchmark::Hl2H.profile()),
        ],
        frames,
        seed: 17,
        server_units: 8,
        shared_network: true,
        link_streams: 1,
        fairness: FairnessPolicy::Weighted,
        server_policy: ServerPolicy::default(),
        stepping,
        retire_window_ms: None,
        telemetry: TelemetryConfig::default(),
    };
    let rr_skew = peak_skew_ms(Fleet::new(config(SteppingPolicy::RoundRobin)), frames);
    let vt_skew = peak_skew_ms(Fleet::new(config(SteppingPolicy::VirtualTime)), frames);
    assert!(
        rr_skew > 4.0 * vt_skew,
        "round-robin must skew tenants apart and virtual time must not: \
         {rr_skew:.0} ms vs {vt_skew:.0} ms"
    );
    // And the artifact's symptom is gone: with virtual time, the fast
    // tenant's remote chain stays fast at long horizons (under round-robin
    // the slow tenant's future frontiers inflate it — DESIGN.md §7 is why
    // the weighted-tilt unit test had to stop at 8 frames).
    let rem = |s: &FleetSummary, i: usize| {
        let f = &s.sessions[i].frames;
        f.iter().map(|r| r.t_remote_ms).sum::<f64>() / f.len() as f64
    };
    let vt = Fleet::run(config(SteppingPolicy::VirtualTime));
    let rr = Fleet::run(config(SteppingPolicy::RoundRobin));
    assert!(
        rem(&vt, 0) < rem(&vt, 1),
        "virtual time: the 8x-weighted tenant keeps its faster remote chain \
         even over {frames} frames: {:.1} vs {:.1} ms",
        rem(&vt, 0),
        rem(&vt, 1),
    );
    assert!(
        rem(&rr, 0) > rem(&vt, 0),
        "round-robin's cross-window queueing must inflate the fast tenant's \
         chain relative to virtual time: {:.1} vs {:.1} ms",
        rem(&rr, 0),
        rem(&vt, 0),
    );
}

#[test]
fn churn_traces_are_deterministic_under_a_fixed_seed() {
    let spec = || SessionSpec::new(SchemeKind::Qvr, Benchmark::Doom3H.profile());
    let make = || {
        let trace = ChurnTrace::poisson(23, 6.0, 300.0, 1_200.0, 1, |_| spec());
        ChurnConfig::new(SystemConfig::default(), vec![spec()], trace, 1_200.0, 23)
    };
    let a = ChurnFleet::run(make());
    let b = ChurnFleet::run(make());
    assert_eq!(a, b, "same seed, same trace, same everything");
    assert!(!a.is_empty());
}

#[test]
fn recycled_slot_gets_a_fresh_rate_controller() {
    // Tenant 0 leaves at 500 ms; a new tenant joins at 600 ms and recycles
    // the slot. With rate control on, the controllers live inside each
    // session's stepper, so the joiner must open at exactly the configured
    // initial quality — fresh loop state, nothing inherited from the
    // departed tenant — while a resident tenant has long stepped away from
    // that initial point.
    let rc = RateControlConfig::on();
    let spec = || SessionSpec::new(SchemeKind::Qvr, Benchmark::Hl2H.profile());
    let trace = ChurnTrace::script(vec![
        ChurnEvent::leave(500.0, 0),
        ChurnEvent::join(600.0, spec()),
    ]);
    let summary = ChurnFleet::run(
        ChurnConfig::new(
            SystemConfig::default(),
            vec![spec(), spec()],
            trace,
            1_200.0,
            11,
        )
        .with_rate_control(rc),
    );
    let tenant = |ordinal: usize| {
        summary
            .tenants
            .iter()
            .find(|t| t.ordinal == ordinal)
            .expect("every ordinal leaves a record")
    };
    let joiner = tenant(2);
    assert!(!joiner.summary.is_empty(), "the joiner stepped frames");
    assert_eq!(
        joiner.summary.frames[0].quality,
        Some(rc.initial_quality),
        "a recycled slot must start from a fresh controller"
    );
    let resident = tenant(1);
    let settled = resident
        .summary
        .frames
        .last()
        .and_then(|f| f.quality)
        .expect("rate control on: every frame carries its quality");
    assert_ne!(
        settled, rc.initial_quality,
        "the resident controller should have stepped off its initial point"
    );
}

/// The retirement window for the bounded-memory smoke, ms. The CI job sets
/// `QVR_RETIRE_WINDOW`; locally the default keeps the test meaningful.
fn retire_window_ms() -> f64 {
    std::env::var("QVR_RETIRE_WINDOW")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(250.0)
}

#[test]
fn churn_bounded_memory_64_sessions_retains_o_window_tasks() {
    // The scale claim: a churn fleet with windowed retirement holds
    // O(window) live tasks per resource no matter how much history it has
    // simulated. Debug builds run a smaller instance; the release CI smoke
    // job runs the full 64-session fleet.
    let (n, horizon_ms) = if cfg!(debug_assertions) {
        (16, 900.0)
    } else {
        (64, 2_000.0)
    };
    let window_ms = retire_window_ms();
    let spec = |i: usize| {
        let apps = [
            Benchmark::Hl2H,
            Benchmark::Doom3H,
            Benchmark::Wolf,
            Benchmark::Ut3,
        ];
        SessionSpec::new(SchemeKind::Qvr, apps[i % apps.len()].profile())
    };
    let initial: Vec<SessionSpec> = (0..n).map(spec).collect();
    // Rolling churn on top: every 40 ms one tenant leaves and a fresh one
    // joins, so membership keeps turning over while the count stays ~n.
    let mut events = Vec::new();
    for k in 0..(n / 4) {
        let t = 100.0 + 40.0 * k as f64;
        events.push(ChurnEvent::leave(t, k));
        events.push(ChurnEvent::join(t + 1.0, spec(n + k)));
    }
    let mut config = ChurnConfig::new(
        SystemConfig::default(),
        initial,
        ChurnTrace::script(events),
        horizon_ms,
        42,
    )
    .with_retire_window_ms(window_ms)
    // Stream the MTP timeline too: the WindowedStatsSink must keep the
    // churn stats series O(window) alongside the engine's task retirement.
    .with_stats_window_ms(window_ms);
    config.server_units = 8;
    config.link_streams = 8;
    let summary = ChurnFleet::run(config);
    assert_eq!(summary.len(), n + n / 4, "everyone joined");
    // Streaming replaced the retained series: no per-run sample vector,
    // and the sink's live footprint is a couple of windows of in-flight
    // frames — it scales with (sessions × window), never the horizon.
    assert!(
        summary.samples.is_empty(),
        "streaming keeps no sample series"
    );
    let total_frames: usize = summary.windows.iter().map(|(_, f, _)| *f).sum();
    assert!(total_frames > 0, "the streamed timeline saw every frame");
    let stats_cap = 4 * n * qvr::sim::checked::ceil_index(window_ms / 10.0);
    assert!(
        summary.peak_open_samples < stats_cap,
        "live stats memory must stay O(sessions x window): peak {} vs cap {} \
         ({} frames streamed over {horizon_ms} ms)",
        summary.peak_open_samples,
        stats_cap,
        total_frames
    );
    assert!(
        summary.retired_tasks > summary.total_tasks / 2,
        "most history must retire: {} of {} tasks",
        summary.retired_tasks,
        summary.total_tasks
    );
    // O(window) per resource: a display-paced session at ~90 Hz with a few
    // tasks per frame stays well under 8 tasks per simulated ms on any one
    // resource; the cap scales with the window, not the horizon.
    let cap = (8.0 * window_ms) as usize;
    assert!(
        summary.peak_live_per_resource < cap,
        "per-resource live state must stay O(window): peak {} vs cap {} \
         (window {window_ms} ms, {} total tasks)",
        summary.peak_live_per_resource,
        cap,
        summary.total_tasks
    );
}

#[test]
fn fleet_retirement_keeps_aggregates_bit_identical() {
    // Retirement drops history, never numbers: the same round-robin fleet
    // with and without a window must produce identical summaries, while
    // the windowed engine retains a fraction of the tasks.
    let mut plain = FleetConfig::uniform(
        SystemConfig::default(),
        SchemeKind::Qvr,
        Benchmark::Hl2H.profile(),
        4,
        50,
        42,
    );
    let mut windowed = plain.clone();
    windowed.retire_window_ms = Some(300.0);
    plain.retire_window_ms = None;
    let keep = Fleet::new(plain);
    let drop = Fleet::new(windowed);
    let keep_engine = keep.shared_engine();
    let drop_engine = drop.shared_engine();
    let a = keep.finish();
    let mut b = drop.finish();
    // The schedule-state gauge is diagnostics about the engine's retained
    // footprint, not measured output — it is the one field retirement is
    // *supposed* to change, and it must change downward.
    assert!(
        b.peak_live_tasks < a.peak_live_tasks,
        "windowed retirement must lower the peak live-task footprint \
         ({} vs {})",
        b.peak_live_tasks,
        a.peak_live_tasks
    );
    b.peak_live_tasks = a.peak_live_tasks;
    assert_eq!(a, b, "retirement must not change a single bit of output");
    assert_eq!(keep_engine.retired_tasks(), 0);
    assert!(
        drop_engine.retired_tasks() > 0,
        "history must actually retire"
    );
    assert!(drop_engine.live_tasks() < keep_engine.live_tasks());
}
