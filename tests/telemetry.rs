//! Telemetry integration tests: the sink-derived `FleetSummary` is
//! bit-identical to the post-hoc aggregation on every fig_fleet golden
//! config, event streams are one-per-frame, fleet energy is non-negative /
//! additive / retirement-proof, and the streaming windowed-stats sink
//! reproduces `ChurnSummary::windowed_p95` exactly.

use qvr::prelude::*;
use qvr::scene::Benchmark;
use std::cell::RefCell;
use std::rc::Rc;

/// A custom sink that forwards every event into a shared vector.
#[derive(Debug)]
struct Recorder(Rc<RefCell<Vec<FrameEvent>>>);

impl TelemetrySink for Recorder {
    fn on_frame(&mut self, event: &FrameEvent) {
        self.0.borrow_mut().push(*event);
    }
}

fn golden_config(preset: NetworkPreset, n: usize) -> FleetConfig {
    FleetConfig::uniform(
        SystemConfig::default().with_network(preset),
        SchemeKind::Qvr,
        Benchmark::Hl2H.profile(),
        n,
        120,
        42,
    )
}

#[test]
fn sink_derived_summary_is_bit_identical_to_post_hoc_on_the_golden_configs() {
    // The tentpole parity contract: `Fleet::finish` now derives its
    // aggregates from the streaming `AggregateSink`, and on every fig_fleet
    // golden config the result must match the post-hoc re-walk
    // (`FleetSummary::from_sessions` over the same per-session summaries)
    // bit for bit. Debug builds skip the 32-session rows (runtime), as the
    // golden suite itself does.
    for preset in NetworkPreset::all() {
        for n in [1usize, 8, 32] {
            if cfg!(debug_assertions) && n > 8 {
                continue;
            }
            let streamed = Fleet::run(golden_config(preset, n));
            let post_hoc = FleetSummary::from_sessions(
                streamed.sessions.clone(),
                streamed.makespan_ms,
                streamed.server_utilization,
                streamed.server_units,
                streamed.shared_network,
                streamed.energy,
            );
            let ctx = format!("{} x{n}", preset.label());
            assert_eq!(
                streamed.energy, post_hoc.energy,
                "{ctx}: re-aggregation must carry the full energy breakdown \
                 (the zero-energy regression)"
            );
            assert_eq!(
                streamed.mtp_p50_ms.to_bits(),
                post_hoc.mtp_p50_ms.to_bits(),
                "{ctx}: p50"
            );
            assert_eq!(
                streamed.mtp_p95_ms.to_bits(),
                post_hoc.mtp_p95_ms.to_bits(),
                "{ctx}: p95"
            );
            assert_eq!(
                streamed.mtp_p99_ms.to_bits(),
                post_hoc.mtp_p99_ms.to_bits(),
                "{ctx}: p99"
            );
            assert_eq!(
                streamed.fps_floor.to_bits(),
                post_hoc.fps_floor.to_bits(),
                "{ctx}: fps floor"
            );
            assert_eq!(
                streamed.mean_fps.to_bits(),
                post_hoc.mean_fps.to_bits(),
                "{ctx}: mean fps"
            );
        }
    }
}

#[test]
fn every_frame_emits_exactly_one_event() {
    let events = Rc::new(RefCell::new(Vec::new()));
    let mut fleet = Fleet::new(golden_config(NetworkPreset::WiFi, 3));
    fleet.attach_sink(Box::new(Recorder(events.clone())));
    let summary = fleet.finish();
    let events = events.borrow();
    let frames_delivered: usize = summary.sessions.iter().map(RunSummary::len).sum();
    assert_eq!(events.len(), frames_delivered, "one event per frame");
    // Per-session: counts match, frame indices are 0..frames in order, and
    // spans tile each session's timeline gaplessly.
    for slot in 0..3 {
        let mine: Vec<&FrameEvent> = events.iter().filter(|e| e.session == slot).collect();
        assert_eq!(mine.len(), summary.sessions[slot].len());
        let mut prev_end = 0.0;
        for (i, e) in mine.iter().enumerate() {
            assert_eq!(e.frame, i as u64);
            assert_eq!(e.span_start_ms, prev_end);
            assert!(e.end_ms > e.span_start_ms);
            prev_end = e.end_ms;
        }
    }
    // Every event's MTP appears in the recorded frames (same values the
    // summary aggregated).
    for e in events.iter() {
        assert_eq!(
            summary.sessions[e.session].frames[e.frame as usize].mtp_ms,
            e.mtp_ms
        );
    }
}

#[test]
fn fleet_energy_is_non_negative_additive_and_matches_the_stream() {
    let events = Rc::new(RefCell::new(Vec::new()));
    let config = golden_config(NetworkPreset::WiFi, 4);
    let server_power = config.system.server_power;
    let mut fleet = Fleet::new(config);
    fleet.attach_sink(Box::new(Recorder(events.clone())));
    let summary = fleet.finish();
    let e = summary.energy;
    for part in [
        e.server_render_mj,
        e.server_encode_mj,
        e.server_idle_mj,
        e.ap_radio_mj,
        e.client_mj,
    ] {
        assert!(part >= 0.0, "energy components are non-negative: {e}");
        assert!(part.is_finite());
    }
    // Additive across sessions: the active server energy equals the
    // per-session attribution summed over the event stream.
    let events = events.borrow();
    let per_session_mj = |slot: usize| -> f64 {
        events
            .iter()
            .filter(|ev| ev.session == slot)
            .map(|ev| {
                server_power.gpu_active_w * ev.server_render_ms
                    + server_power.enc_active_w * ev.server_encode_ms
            })
            .sum()
    };
    let attributed: f64 = (0..4).map(per_session_mj).sum();
    let active = e.server_render_mj + e.server_encode_mj;
    assert!(
        (attributed - active).abs() <= 1e-9 * active,
        "per-session energy must add up to the fleet total: {attributed} vs {active}"
    );
    // And the client side is exactly the sum of the sessions' own budgets.
    let client: f64 = summary.sessions.iter().map(|s| s.energy.total_mj()).sum();
    assert_eq!(e.client_mj, client);
}

#[test]
fn fleet_energy_is_bit_identical_with_retirement_on_and_off() {
    // The bugfix-by-construction satellite: energy accounting flows through
    // the event stream (and retired busy intervals fold into cumulative
    // engine counters), so windowed task retirement must not move a single
    // bit of any energy field.
    let mut plain = golden_config(NetworkPreset::WiFi, 4);
    plain.frames = 60;
    let mut windowed = plain.clone();
    windowed.retire_window_ms = Some(300.0);
    let keep = Fleet::run(plain);
    let drop = Fleet::run(windowed);
    assert_eq!(
        keep.energy, drop.energy,
        "retirement must not change energy: {} vs {}",
        keep.energy, drop.energy
    );
    assert_eq!(
        keep.energy.server_render_mj.to_bits(),
        drop.energy.server_render_mj.to_bits()
    );
    assert_eq!(
        keep.energy.ap_radio_mj.to_bits(),
        drop.energy.ap_radio_mj.to_bits()
    );
    assert_eq!(
        keep.energy.client_mj.to_bits(),
        drop.energy.client_mj.to_bits()
    );
    assert!(keep.energy.total_mj() > 0.0);
}

#[test]
fn energy_differs_measurably_across_server_policies() {
    // The fig_energy acceptance claim at test scale: on the mixed
    // noisy-neighbour roster, placement changes queueing, queueing changes
    // the fleet's makespan and the adaptive tenants' operating points, and
    // the energy meter must see it — least-loaded (every adaptive tenant
    // dragged to ~13 FPS, long makespan, big idle floor) burns measurably
    // differently from the quota split.
    let frames = 40;
    let base = Fleet::run(qvr_bench::fig_sched::mixed_config(
        NetworkPreset::WiFi,
        ServerPolicy::LeastLoaded,
        frames,
    ));
    let quota = Fleet::run(qvr_bench::fig_sched::mixed_config(
        NetworkPreset::WiFi,
        ServerPolicy::QuotaPartition { reserved: 6 },
        frames,
    ));
    let (a, b) = (base.energy.total_mj(), quota.energy.total_mj());
    assert!(
        (a - b).abs() > 0.02 * a.max(b),
        "placement must move fleet energy by >2%: least-loaded {a:.0} mJ vs quota {b:.0} mJ"
    );
    assert!(a > 0.0 && b > 0.0);
}

#[test]
fn windowed_sink_reproduces_churn_windowed_p95_on_a_recorded_trace() {
    // Feed a real churn run's retained sample series through a
    // WindowedStatsSink (with an aggressively trailing close frontier) and
    // require the exact post-hoc timeline.
    let spec = || SessionSpec::new(SchemeKind::Qvr, Benchmark::Hl2H.profile());
    let trace = ChurnTrace::poisson(5, 3.0, 300.0, 800.0, 2, |_| spec());
    let summary = ChurnFleet::run(ChurnConfig::new(
        SystemConfig::default(),
        vec![spec(), spec()],
        trace,
        800.0,
        7,
    ));
    assert!(!summary.samples.is_empty(), "retained series present");
    let window_ms = 100.0;
    let mut sink = WindowedStatsSink::new(window_ms);
    for (i, (t, mtp)) in summary.samples.iter().enumerate() {
        sink.on_frame(&FrameEvent {
            session: 0,
            frame: i as u64,
            span_start_ms: 0.0,
            end_ms: *t,
            mtp_ms: *mtp,
            tx_bytes: 0.0,
            quality: None,
            server_render_ms: 0.0,
            server_encode_ms: 0.0,
            radio_ms: 0.0,
            unit: None,
            class: TenantClass::Adaptive,
            spans: FrameSpans::default(),
        });
        // Samples across sessions interleave non-monotonically; a frontier
        // trailing by a generous margin is what fleets guarantee.
        sink.close_before(t - 150.0);
    }
    assert_eq!(sink.finish(), summary.windowed_p95(window_ms));
}

#[test]
fn fleet_summaries_can_stream_a_windowed_timeline() {
    let mut config = golden_config(NetworkPreset::WiFi, 2);
    config.frames = 40;
    config.telemetry = TelemetryConfig::default().with_window_ms(50.0);
    let summary = Fleet::run(config);
    assert!(!summary.windows.is_empty());
    let frames: usize = summary.windows.iter().map(|(_, n, _)| *n).sum();
    assert_eq!(frames, 2 * 40, "the timeline covers every frame");
    for pair in summary.windows.windows(2) {
        assert!(pair[0].0 < pair[1].0, "buckets stay in time order");
    }
    // Without a configured width the timeline stays empty.
    let plain = Fleet::run(golden_config(NetworkPreset::WiFi, 2));
    assert!(plain.windows.is_empty());
}

#[test]
fn disabling_the_energy_meter_zeroes_only_the_energy_fields() {
    let mut config = golden_config(NetworkPreset::WiFi, 2);
    config.frames = 20;
    let with = Fleet::run(config.clone());
    config.telemetry.energy = false;
    let without = Fleet::run(config);
    assert_eq!(without.energy, FleetEnergy::default());
    assert!(with.energy.total_mj() > 0.0);
    assert_eq!(with.mtp_p95_ms.to_bits(), without.mtp_p95_ms.to_bits());
    assert_eq!(with.sessions, without.sessions, "metering never perturbs");
}
